package train

import (
	"testing"

	"github.com/inca-arch/inca/internal/fault"
)

func TestStuckFaultTableDegradesWithRate(t *testing.T) {
	cfg := tinyConfig()
	rows := StuckFaultTable(cfg, []float64{0, 0.5})
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Stuck != 0 {
		t.Fatalf("rate 0 pinned %d weights", rows[0].Stuck)
	}
	if rows[0].Accuracy != rows[0].Clean {
		t.Fatalf("rate 0 accuracy %v differs from clean %v", rows[0].Accuracy, rows[0].Clean)
	}
	if rows[1].Stuck == 0 {
		t.Fatal("rate 0.5 pinned no weights")
	}
	if rows[1].Accuracy >= rows[1].Clean {
		t.Fatalf("half the devices dead but accuracy %v did not drop below clean %v",
			rows[1].Accuracy, rows[1].Clean)
	}
}

func TestApplyStuckFaultsIsDeterministic(t *testing.T) {
	cfg := tinyConfig()
	base, _, testSet := pretrained(cfg)

	a, b := base.Clone(), base.Clone()
	na := a.ApplyStuckFaults(fault.New(11), 0.1)
	nb := b.ApplyStuckFaults(fault.New(11), 0.1)
	if na != nb || na == 0 {
		t.Fatalf("stuck counts differ across identically-seeded injectors: %d vs %d", na, nb)
	}
	if accA, accB := Accuracy(a, testSet), Accuracy(b, testSet); accA != accB {
		t.Fatalf("identically-seeded faulted models diverge: %v vs %v", accA, accB)
	}

	// A different seed kills a different device set.
	c := base.Clone()
	c.ApplyStuckFaults(fault.New(12), 0.1)
	same := true
	for i, l := range a.Layers {
		ca, ok := l.(*Conv)
		if !ok {
			continue
		}
		cc := c.Layers[i].(*Conv)
		for j := range ca.W.Data() {
			if ca.W.Data()[j] != cc.W.Data()[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("distinct seeds pinned identical device sets")
	}
}
