package train

import (
	"math/rand"

	"github.com/inca-arch/inca/internal/data"
	"github.com/inca-arch/inca/internal/rram"
)

// ExperimentConfig sizes the accuracy experiments. The defaults trade a
// few seconds of CPU for stable accuracy estimates; tests shrink them.
type ExperimentConfig struct {
	Data           data.Config
	PretrainEpochs int
	NoiseEpochs    int // fine-tuning epochs under noise (paper: 10)
	LR             float64
	Seed           int64
	// WriteInterval is the device reprogramming granularity in SGD steps;
	// smaller intervals accumulate more write error per epoch.
	WriteInterval int
	// Repeats averages each noise condition over this many independent
	// noise seeds (0 or 1 = single run). Higher values stabilize the
	// Table VI rows at proportional CPU cost.
	Repeats int
}

// DefaultExperimentConfig mirrors the paper's protocol at the synthetic
// dataset's scale.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		Data:           data.DefaultConfig(),
		PretrainEpochs: 8,
		NoiseEpochs:    10,
		LR:             0.02,
		Seed:           7,
		WriteInterval:  16,
	}
}

// pretrained returns a clean-trained network plus the train/test split.
func pretrained(cfg ExperimentConfig) (*Network, *data.Dataset, *data.Dataset) {
	ds := data.Generate(cfg.Data)
	trainSet, testSet := ds.Split(0.25)
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := SmallCNN(rng, 1, cfg.Data.H, cfg.Data.W, cfg.Data.Classes)
	tr := &Trainer{Net: net, LR: cfg.LR}
	tr.Train(trainSet, cfg.PretrainEpochs)
	return net, trainSet, testSet
}

// NoiseAccuracyRow is one row of the Table VI reproduction.
type NoiseAccuracyRow struct {
	Sigma           float64
	WeightNoise     float64 // accuracy (%) with σ applied to weights (WS case)
	ActivationAcc   float64 // accuracy (%) with σ applied to activations (IS case)
	BaselineNoNoise float64
}

// NoiseAccuracyTable reproduces Table VI: starting from a pretrained
// model, continue training for NoiseEpochs with zero-centered Gaussian
// noise of strength σ injected into either weights or activations, then
// measure accuracy with the nonideal device still active.
func NoiseAccuracyTable(cfg ExperimentConfig, sigmas []float64) []NoiseAccuracyRow {
	base, trainSet, testSet := pretrained(cfg)
	clean := Accuracy(base, testSet)

	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	rows := make([]NoiseAccuracyRow, 0, len(sigmas))
	for i, sigma := range sigmas {
		row := NoiseAccuracyRow{Sigma: sigma, BaselineNoNoise: clean}

		for rep := 0; rep < repeats; rep++ {
			off := int64(1000*rep + i)

			// Weight-noise case (WS exposure).
			wNet := base.Clone()
			wTr := &Trainer{Net: wNet, LR: cfg.LR, Target: NoiseWeights, Sigma: sigma,
				Seed: cfg.Seed + 100 + off, WriteInterval: cfg.WriteInterval}
			wTr.Train(trainSet, cfg.NoiseEpochs)
			wNet.SetWeightReadNoise(rram.NewNoiseModel(sigma, cfg.Seed+200+off))
			row.WeightNoise += Accuracy(wNet, testSet)
			wNet.SetWeightReadNoise(nil)

			// Activation-noise case (IS exposure).
			aNet := base.Clone()
			aTr := &Trainer{Net: aNet, LR: cfg.LR, Target: NoiseActivations, Sigma: sigma,
				Seed: cfg.Seed + 300 + off}
			aTr.Train(trainSet, cfg.NoiseEpochs)
			aNet.ActNoise = rram.NewNoiseModel(sigma, cfg.Seed+400+off)
			row.ActivationAcc += Accuracy(aNet, testSet)
			aNet.ActNoise = nil
		}
		row.WeightNoise /= float64(repeats)
		row.ActivationAcc /= float64(repeats)
		rows = append(rows, row)
	}
	return rows
}

// BitDepthRow is one column pair of the Table I reproduction: the accuracy
// drop (percentage points, negative = worse) relative to the full-precision
// model when one operand is quantized to Bits while the other stays at 8.
type BitDepthRow struct {
	Bits            int
	ActQuantDrop    float64 // 8-bit weights, activations at Bits
	WeightQuantDrop float64 // 8-bit activations, weights at Bits
}

// BitDepthTable reproduces Table I's post-training quantization study.
func BitDepthTable(cfg ExperimentConfig, bits []int) []BitDepthRow {
	base, _, testSet := pretrained(cfg)
	full := Accuracy(base, testSet)

	rows := make([]BitDepthRow, 0, len(bits))
	for _, b := range bits {
		row := BitDepthRow{Bits: b}

		// 8-bit weights, b-bit activations.
		aNet := base.Clone()
		aNet.QuantizeWeights(8)
		aNet.Quant = &QuantSpec{ActivationBits: b}
		row.ActQuantDrop = Accuracy(aNet, testSet) - full

		// 8-bit activations, b-bit weights.
		wNet := base.Clone()
		wNet.QuantizeWeights(b)
		wNet.Quant = &QuantSpec{ActivationBits: 8}
		row.WeightQuantDrop = Accuracy(wNet, testSet) - full

		rows = append(rows, row)
	}
	return rows
}
