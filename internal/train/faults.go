package train

import (
	"fmt"

	"github.com/inca-arch/inca/internal/fault"
	"github.com/inca-arch/inca/internal/tensor"
)

// ApplyStuckFaults pins a fraction of every parametric layer's weights
// at stuck-at conductances, modeling formed-but-dead RRAM devices in the
// arrays holding the model: a stuck-at-LRS cell reads the layer's
// full-scale weight magnitude, a stuck-at-HRS cell reads zero. The
// injector selects the cells deterministically per layer (site
// "train/layer/<i>"), so a given seed kills the same devices on every
// run. Returns the number of weights pinned.
func (n *Network) ApplyStuckFaults(inj *fault.Injector, rate float64) int {
	stuck := 0
	li := 0
	for _, l := range n.Layers {
		var w *tensor.Tensor
		switch t := l.(type) {
		case *Conv:
			w = t.W
		case *FC:
			w = t.W
		default:
			continue
		}
		cells := inj.StuckCells(fmt.Sprintf("train/layer/%d", li), w.Len(), rate)
		scale := w.MaxAbs()
		for _, c := range cells {
			if c.LRS {
				w.Data()[c.Index] = scale
			} else {
				w.Data()[c.Index] = 0
			}
		}
		stuck += len(cells)
		li++
	}
	return stuck
}

// StuckFaultRow is one point of the accuracy-under-fault-rate study.
type StuckFaultRow struct {
	Rate     float64 // per-device fault probability
	Stuck    int     // weights actually pinned
	Accuracy float64 // test accuracy (%) with the faults in place
	Clean    float64 // fault-free accuracy (%) of the same pretrained model
}

// StuckFaultTable measures classification accuracy as a function of the
// stuck-at device fault rate: a pretrained model is cloned per rate, the
// injector (seeded from cfg.Seed) pins weights at LRS/HRS, and the
// degraded model is evaluated unchanged — the robustness layer's bridge
// back to the paper's hardware substrate.
func StuckFaultTable(cfg ExperimentConfig, rates []float64) []StuckFaultRow {
	base, _, testSet := pretrained(cfg)
	clean := Accuracy(base, testSet)
	rows := make([]StuckFaultRow, 0, len(rates))
	for _, rate := range rates {
		net := base.Clone()
		stuck := net.ApplyStuckFaults(fault.New(cfg.Seed), rate)
		rows = append(rows, StuckFaultRow{
			Rate:     rate,
			Stuck:    stuck,
			Accuracy: Accuracy(net, testSet),
			Clean:    clean,
		})
	}
	return rows
}
