package train

import (
	"math"

	"github.com/inca-arch/inca/internal/data"
	"github.com/inca-arch/inca/internal/rram"
	"github.com/inca-arch/inca/internal/tensor"
)

// SoftmaxCrossEntropy returns the loss and dL/dlogits for one sample.
func SoftmaxCrossEntropy(logits *tensor.Tensor, label int) (loss float64, delta *tensor.Tensor) {
	p := tensor.Softmax(logits)
	loss = -math.Log(math.Max(p.At(label), 1e-12))
	delta = p.Clone()
	delta.Set(delta.At(label)-1, label)
	return loss, delta
}

// L2Loss returns the squared-error loss and its gradient against a one-hot
// target (paper Eq. 3's δ_L = y_target − y_pred, with the sign folded into
// the returned gradient dL/dy = y_pred − y_target).
func L2Loss(pred *tensor.Tensor, label int) (loss float64, delta *tensor.Tensor) {
	delta = pred.Clone()
	delta.Set(delta.At(label)-1, label)
	for _, v := range delta.Data() {
		loss += 0.5 * v * v
	}
	return loss, delta
}

// Trainer runs per-sample SGD with configurable nonideality injection.
type Trainer struct {
	Net *Network
	LR  float64

	// Target selects which operand the device noise corrupts; Sigma is
	// the relative strength (Table VI's σ).
	Target NoiseTarget
	Sigma  float64
	Seed   int64

	// WriteInterval is how many SGD steps accumulate digitally before the
	// updated weights are reprogrammed into the device (Table II's batch
	// size by default). Each reprogramming lands with persistent write
	// error in the weight-noise case.
	WriteInterval int
}

// Train runs the given number of epochs over the dataset and returns the
// final average training loss.
func (t *Trainer) Train(ds *data.Dataset, epochs int) float64 {
	var readNoise, writeNoise, actNoise *rram.NoiseModel
	switch t.Target {
	case NoiseWeights:
		// Both a transient read error on every use and a persistent write
		// error on every update — the WS exposure.
		readNoise = rram.NewNoiseModel(t.Sigma, t.Seed+1)
		writeNoise = rram.NewNoiseModel(t.Sigma, t.Seed+2)
		t.Net.SetWeightReadNoise(readNoise)
	case NoiseActivations:
		// Transient only: activations are rewritten every pass — the IS
		// exposure.
		actNoise = rram.NewNoiseModel(t.Sigma, t.Seed+3)
		t.Net.ActNoise = actNoise
	}
	defer func() {
		t.Net.SetWeightReadNoise(nil)
		t.Net.ActNoise = nil
	}()

	interval := t.WriteInterval
	if interval <= 0 {
		interval = 64
	}
	lastLoss := 0.0
	steps := 0
	for e := 0; e < epochs; e++ {
		sum := 0.0
		for _, s := range ds.Samples {
			out := t.Net.Forward(s.Image)
			loss, delta := SoftmaxCrossEntropy(out, s.Label)
			sum += loss
			sanitize(delta)
			t.Net.Backward(delta)
			t.Net.Step(t.LR, nil)
			steps++
			if steps%interval == 0 {
				// Batch boundary: the accumulated update is written into
				// the device, landing with persistent error in the
				// weight-noise case.
				t.Net.PerturbWeights(writeNoise)
			}
		}
		lastLoss = sum / float64(len(ds.Samples))
	}
	return lastLoss
}

// sanitize clamps the loss gradient so device-noise-induced blow-ups
// degrade accuracy (the effect Table VI measures) rather than producing
// NaN weights.
func sanitize(delta *tensor.Tensor) {
	const clip = 10.0
	d := delta.Data()
	for i, v := range d {
		switch {
		case math.IsNaN(v):
			d[i] = 0
		case v > clip:
			d[i] = clip
		case v < -clip:
			d[i] = -clip
		}
	}
}

// Accuracy evaluates top-1 accuracy (percent) on a dataset. Evaluation is
// batch-parallel for hook-free networks (see Network.ForwardBatch); the
// result is identical to a serial pass in either mode.
func Accuracy(net *Network, ds *data.Dataset) float64 {
	xs := make([]*tensor.Tensor, len(ds.Samples))
	for i, s := range ds.Samples {
		xs[i] = s.Image
	}
	correct := 0
	for i, out := range net.ForwardBatch(xs) {
		best, bestV := 0, math.Inf(-1)
		for j, v := range out.Data() {
			if v > bestV {
				best, bestV = j, v
			}
		}
		if best == ds.Samples[i].Label {
			correct++
		}
	}
	return 100 * float64(correct) / float64(len(ds.Samples))
}
