package train

import (
	"math"
	"math/rand"
	"testing"

	"github.com/inca-arch/inca/internal/data"
	"github.com/inca-arch/inca/internal/rram"
	"github.com/inca-arch/inca/internal/tensor"
)

// tinyConfig keeps the unit-test experiments fast (< 2 s).
func tinyConfig() ExperimentConfig {
	cfg := DefaultExperimentConfig()
	cfg.Data.PerClass = 24
	cfg.PretrainEpochs = 5
	cfg.NoiseEpochs = 4
	return cfg
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.FromSlice([]float64{0, 0, 10}, 3)
	loss, delta := SoftmaxCrossEntropy(logits, 2)
	if loss > 0.01 {
		t.Fatalf("confident correct prediction should have near-zero loss: %v", loss)
	}
	lossWrong, _ := SoftmaxCrossEntropy(logits, 0)
	if lossWrong < 5 {
		t.Fatalf("confident wrong prediction should have large loss: %v", lossWrong)
	}
	// Gradient sums to zero (softmax minus one-hot).
	if math.Abs(delta.Sum()) > 1e-9 {
		t.Fatalf("delta sum = %v, want 0", delta.Sum())
	}
}

func TestL2Loss(t *testing.T) {
	pred := tensor.FromSlice([]float64{0.2, 0.8}, 2)
	loss, delta := L2Loss(pred, 1)
	want := 0.5 * (0.2*0.2 + 0.2*0.2)
	if math.Abs(loss-want) > 1e-12 {
		t.Fatalf("L2 loss = %v, want %v", loss, want)
	}
	if math.Abs(delta.At(0)-0.2) > 1e-12 || math.Abs(delta.At(1)-(-0.2)) > 1e-12 {
		t.Fatalf("L2 delta = %v", delta)
	}
}

// TestNetworkGradientNumerical end-to-end checks the engine's backward
// pass against central differences through conv+relu+pool+fc.
func TestNetworkGradientNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := SmallCNN(rng, 1, 10, 10, 3)
	x := tensor.Randn(rng, 1, 1, 10, 10)
	label := 1

	lossOf := func() float64 {
		out := net.Forward(x)
		l, _ := SoftmaxCrossEntropy(out, label)
		return l
	}
	out := net.Forward(x)
	_, delta := SoftmaxCrossEntropy(out, label)
	net.Backward(delta)

	conv := net.Layers[0].(*Conv)
	analytic := conv.dW.Clone()
	const eps = 1e-5
	for _, idx := range []int{0, 7, 20, 50} {
		orig := conv.W.Data()[idx]
		conv.W.Data()[idx] = orig + eps
		up := lossOf()
		conv.W.Data()[idx] = orig - eps
		down := lossOf()
		conv.W.Data()[idx] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-analytic.Data()[idx]) > 1e-4 {
			t.Fatalf("conv dW[%d]: analytic %v, numeric %v", idx, analytic.Data()[idx], numeric)
		}
	}

	fc := net.Layers[len(net.Layers)-1].(*FC)
	analyticFC := fc.dW.Clone()
	for _, idx := range []int{0, 5, 30} {
		orig := fc.W.Data()[idx]
		fc.W.Data()[idx] = orig + eps
		up := lossOf()
		fc.W.Data()[idx] = orig - eps
		down := lossOf()
		fc.W.Data()[idx] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-analyticFC.Data()[idx]) > 1e-4 {
			t.Fatalf("fc dW[%d]: analytic %v, numeric %v", idx, analyticFC.Data()[idx], numeric)
		}
	}
}

// TestTrainingLearns is the end-to-end sanity check: the small CNN must
// reach high accuracy on the synthetic dataset.
func TestTrainingLearns(t *testing.T) {
	cfg := tinyConfig()
	ds := data.Generate(cfg.Data)
	trainSet, testSet := ds.Split(0.25)
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := SmallCNN(rng, 1, cfg.Data.H, cfg.Data.W, cfg.Data.Classes)

	before := Accuracy(net, testSet)
	tr := &Trainer{Net: net, LR: cfg.LR}
	loss := tr.Train(trainSet, cfg.PretrainEpochs)
	after := Accuracy(net, testSet)

	if after < 75 {
		t.Fatalf("accuracy after training = %.1f%%, want >= 75%%", after)
	}
	if after <= before+20 {
		t.Fatalf("training barely improved accuracy: %v -> %v", before, after)
	}
	if loss > 1.5 {
		t.Fatalf("final loss = %v, want < 1.5", loss)
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := SmallCNN(rng, 1, 10, 10, 3)
	cl := net.Clone()
	net.Layers[0].(*Conv).W.Fill(0)
	if cl.Layers[0].(*Conv).W.MaxAbs() == 0 {
		t.Fatal("clone shares weight storage")
	}
	if len(cl.Layers) != len(net.Layers) {
		t.Fatal("clone layer count differs")
	}
}

func TestQuantizeWeightsCoarsens(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := SmallCNN(rng, 1, 10, 10, 3)
	orig := net.Layers[0].(*Conv).W.Clone()
	net.QuantizeWeights(2)
	q := net.Layers[0].(*Conv).W
	if q.Equal(orig, 1e-12) {
		t.Fatal("2-bit quantization should change weights")
	}
	// 2-bit symmetric quantization leaves at most 3 distinct magnitudes.
	seen := map[float64]bool{}
	for _, v := range q.Data() {
		seen[math.Abs(v)] = true
	}
	if len(seen) > 3 {
		t.Fatalf("2-bit weights have %d distinct magnitudes", len(seen))
	}
}

func TestPerturbWeightsNilIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := SmallCNN(rng, 1, 10, 10, 3)
	before := net.Layers[0].(*Conv).W.Clone()
	net.PerturbWeights(nil)
	if !net.Layers[0].(*Conv).W.Equal(before, 0) {
		t.Fatal("nil noise should not change weights")
	}
	net.PerturbWeights(rram.NewNoiseModel(0.1, 1))
	if net.Layers[0].(*Conv).W.Equal(before, 1e-12) {
		t.Fatal("noise model should change weights")
	}
}

func TestSanitizeClampsGradients(t *testing.T) {
	d := tensor.FromSlice([]float64{math.NaN(), 100, -100, 1}, 4)
	sanitize(d)
	if d.At(0) != 0 || d.At(1) != 10 || d.At(2) != -10 || d.At(3) != 1 {
		t.Fatalf("sanitize = %v", d)
	}
}

func TestNoiseTargetString(t *testing.T) {
	if NoiseWeights.String() != "weights" || NoiseActivations.String() != "activations" || NoiseNone.String() != "none" {
		t.Fatal("NoiseTarget names mismatch")
	}
}

// TestTableVIShape pins the headline robustness asymmetry at a reduced
// scale: at the largest σ, activation noise (the IS case) retains much
// higher accuracy than weight noise (the WS case).
func TestTableVIShape(t *testing.T) {
	cfg := tinyConfig()
	cfg.NoiseEpochs = 8 // enough device writes for the walk to show
	rows := NoiseAccuracyTable(cfg, []float64{0.01, 0.08})
	low, high := rows[0], rows[1]
	if high.ActivationAcc < high.WeightNoise+10 {
		t.Fatalf("at sigma=0.05 activations (%.1f%%) should beat weights (%.1f%%) by >= 10 points",
			high.ActivationAcc, high.WeightNoise)
	}
	if high.WeightNoise > low.WeightNoise {
		t.Fatalf("weight-noise accuracy should not improve with more noise: %.1f -> %.1f",
			low.WeightNoise, high.WeightNoise)
	}
	// Activation robustness: stays within 20 points of clean accuracy.
	if high.ActivationAcc < high.BaselineNoNoise-20 {
		t.Fatalf("activation noise dropped accuracy too far: %.1f vs clean %.1f",
			high.ActivationAcc, high.BaselineNoNoise)
	}
}

// TestTableIShape pins the quantization asymmetry at a reduced scale:
// very low-bit weights hurt at least as much as very low-bit activations,
// and 7-bit quantization of either operand is nearly free.
func TestTableIShape(t *testing.T) {
	cfg := tinyConfig()
	rows := BitDepthTable(cfg, []int{7, 2})
	for _, r := range rows {
		switch r.Bits {
		case 7:
			if r.ActQuantDrop < -5 || r.WeightQuantDrop < -5 {
				t.Fatalf("7-bit quantization should be nearly free: act %.1f, wt %.1f",
					r.ActQuantDrop, r.WeightQuantDrop)
			}
		case 2:
			if r.WeightQuantDrop > -10 {
				t.Fatalf("2-bit weights should hurt badly: %.1f", r.WeightQuantDrop)
			}
			if r.WeightQuantDrop > r.ActQuantDrop+10 {
				t.Fatalf("weight quantization (%.1f) should hurt at least as much as activation (%.1f)",
					r.WeightQuantDrop, r.ActQuantDrop)
			}
		}
	}
}
