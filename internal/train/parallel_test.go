package train

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"github.com/inca-arch/inca/internal/data"
	"github.com/inca-arch/inca/internal/rram"
	"github.com/inca-arch/inca/internal/tensor"
)

func smallDataset() *data.Dataset {
	cfg := data.DefaultConfig()
	cfg.PerClass = 4
	return data.Generate(cfg)
}

func datasetImages(ds *data.Dataset) []*tensor.Tensor {
	xs := make([]*tensor.Tensor, len(ds.Samples))
	for i, s := range ds.Samples {
		xs[i] = s.Image
	}
	return xs
}

func tensorsBitEqual(a, b *tensor.Tensor) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i, v := range a.Data() {
		if math.Float64bits(v) != math.Float64bits(b.Data()[i]) {
			return false
		}
	}
	return true
}

// ForwardBatch must match per-image Forward calls bit for bit at every
// worker budget, including quantized evaluation (a deterministic hook).
func TestForwardBatchMatchesSerialBitwise(t *testing.T) {
	ds := smallDataset()
	xs := datasetImages(ds)
	for _, quant := range []*QuantSpec{nil, {WeightBits: 6, ActivationBits: 6}} {
		net := SmallCNN(rand.New(rand.NewSource(7)), 1, ds.H, ds.W, ds.Classes)
		net.Quant = quant
		want := make([]*tensor.Tensor, len(xs))
		prev := tensor.SetParallelism(1)
		for i, x := range xs {
			want[i] = net.Forward(x)
		}
		tensor.SetParallelism(prev)
		for _, budget := range []int{1, runtime.GOMAXPROCS(0), len(xs) + 3} {
			prev := tensor.SetParallelism(budget)
			got := net.ForwardBatch(xs)
			tensor.SetParallelism(prev)
			for i := range got {
				if !tensorsBitEqual(got[i], want[i]) {
					t.Fatalf("quant=%v budget=%d: image %d differs from serial Forward", quant, budget, i)
				}
			}
		}
	}
}

// Networks with noise hooks draw from a shared sequential RNG whose
// stream order is part of the experiment; ForwardBatch must take the
// serial path and reproduce a plain Forward loop exactly.
func TestForwardBatchNoiseHookStaysSerial(t *testing.T) {
	ds := smallDataset()
	xs := datasetImages(ds)
	build := func() *Network {
		net := SmallCNN(rand.New(rand.NewSource(7)), 1, ds.H, ds.W, ds.Classes)
		net.ActNoise = rram.NewNoiseModel(0.05, 99)
		return net
	}
	serialNet := build()
	if serialNet.deterministicEval() {
		t.Fatal("noise-hooked network must not claim deterministic evaluation")
	}
	want := make([]*tensor.Tensor, len(xs))
	for i, x := range xs {
		want[i] = serialNet.Forward(x)
	}
	batchNet := build() // fresh noise model, identical seed → same stream
	prev := tensor.SetParallelism(runtime.GOMAXPROCS(0) + 4)
	got := batchNet.ForwardBatch(xs)
	tensor.SetParallelism(prev)
	for i := range got {
		if !tensorsBitEqual(got[i], want[i]) {
			t.Fatalf("image %d: noise-hooked ForwardBatch diverged from the serial RNG stream", i)
		}
	}
	// Weight read noise likewise forces the serial path.
	readNet := SmallCNN(rand.New(rand.NewSource(7)), 1, ds.H, ds.W, ds.Classes)
	readNet.SetWeightReadNoise(rram.NewNoiseModel(0.05, 99))
	if readNet.deterministicEval() {
		t.Fatal("read-noise network must not claim deterministic evaluation")
	}
}

// Accuracy is defined on top of ForwardBatch; it must agree with a
// hand-rolled serial argmax loop.
func TestAccuracyMatchesSerialLoop(t *testing.T) {
	ds := smallDataset()
	net := SmallCNN(rand.New(rand.NewSource(7)), 1, ds.H, ds.W, ds.Classes)
	correct := 0
	prevBudget := tensor.SetParallelism(1)
	for _, s := range ds.Samples {
		out := net.Forward(s.Image)
		best, bestV := 0, math.Inf(-1)
		for j, v := range out.Data() {
			if v > bestV {
				best, bestV = j, v
			}
		}
		if best == s.Label {
			correct++
		}
	}
	tensor.SetParallelism(prevBudget)
	want := 100 * float64(correct) / float64(len(ds.Samples))
	prev := tensor.SetParallelism(runtime.GOMAXPROCS(0))
	got := Accuracy(net, ds)
	tensor.SetParallelism(prev)
	if got != want {
		t.Fatalf("Accuracy = %v, serial loop gives %v", got, want)
	}
}

// evalReplica must not share mutable forward-pass state with the parent.
func TestEvalReplicaIsolation(t *testing.T) {
	ds := smallDataset()
	net := SmallCNN(rand.New(rand.NewSource(7)), 1, ds.H, ds.W, ds.Classes)
	net.Quant = &QuantSpec{ActivationBits: 5}
	r := net.evalReplica()
	if r == net {
		t.Fatal("replica aliases the parent")
	}
	if r.Quant == net.Quant {
		t.Fatal("replica shares the parent's QuantSpec pointer")
	}
	if *r.Quant != *net.Quant {
		t.Fatal("replica dropped the quantization hook")
	}
	a := net.Forward(ds.Samples[0].Image)
	b := r.Forward(ds.Samples[0].Image)
	if !tensorsBitEqual(a, b) {
		t.Fatal("replica forward pass differs from parent")
	}
}
