package outstat

import (
	"testing"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/baseline"
	"github.com/inca-arch/inca/internal/conformance"
	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

func TestConformance(t *testing.T) {
	d, err := dataflow.Get(DataflowID)
	if err != nil {
		t.Fatal(err)
	}
	conformance.Run(t, d)
}

// TestADCAmortization pins the backend's structural claim: converting
// each output element once must take far fewer ADC conversions than the
// WS baseline's per-cycle column scans on the same network.
func TestADCAmortization(t *testing.T) {
	net := nn.LeNet5()
	osRep := New(arch.OutStationary()).Simulate(net, sim.Inference)
	wsRep := baseline.New(arch.Baseline()).Simulate(net, sim.Inference)
	if osRep.Total.Counts.ADCConversions*10 >= wsRep.Total.Counts.ADCConversions {
		t.Errorf("OS conversions %d not well below WS %d",
			osRep.Total.Counts.ADCConversions, wsRep.Total.Counts.ADCConversions)
	}
}

// TestAspectTradesRefetch pins the mapping knob: a taller accumulator
// tile (more positions resident) must reduce weight traffic relative to
// a wider tile on a conv-heavy network, and vice versa for inputs.
func TestAspectTradesRefetch(t *testing.T) {
	tall := arch.OutStationary()
	tall.SubarrayRows, tall.SubarrayCols = 512, 32
	wide := arch.OutStationary()
	wide.SubarrayRows, wide.SubarrayCols = 32, 512

	l := nn.Layer{Kind: nn.Conv, Name: "conv", InC: 64, OutC: 128, KH: 3, KW: 3,
		InH: 32, InW: 32, OutH: 32, OutW: 32}

	gTall := New(tall).layerGeometry(l)
	gWide := New(wide).layerGeometry(l)
	if gTall.posBlocks >= gWide.posBlocks {
		t.Errorf("tall tile posBlocks %d not below wide %d", gTall.posBlocks, gWide.posBlocks)
	}
	if gTall.chBlocks <= gWide.chBlocks {
		t.Errorf("tall tile chBlocks %d not above wide %d", gTall.chBlocks, gWide.chBlocks)
	}
}

func TestTrainingPanicsAtMachine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("training on the bare machine did not panic")
		}
	}()
	New(arch.OutStationary()).Simulate(nn.LeNet5(), sim.Training)
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("invalid config did not panic")
		}
	}()
	New(arch.Config{})
}
