package outstat

import (
	"fmt"

	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/sim"
)

// DataflowID is the registry ID of the output-stationary backend.
const DataflowID = "os"

func init() { dataflow.Register(osDataflow{}) }

// osDataflow adapts this package to the dataflow.Dataflow interface.
type osDataflow struct{}

func (osDataflow) ID() string { return DataflowID }

func (osDataflow) Capabilities() dataflow.Capabilities {
	return dataflow.Capabilities{
		ID:           DataflowID,
		Name:         "Output-stationary",
		Description:  "MAC-DO-style in-array accumulators: outputs resident, inputs and weights both stream (inference only)",
		Phases:       []sim.Phase{sim.Inference},
		Configurable: true,
		Aliases:      []string{"outstat", "output-stationary", "mac-do"},
	}
}

func (osDataflow) DefaultConfig() arch.Config { return arch.OutStationary() }

func (osDataflow) New(cfg arch.Config) (sim.Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return dataflow.GuardPhases(sim.WrapID(New(cfg), DataflowID), DataflowID, sim.Inference), nil
}

func (osDataflow) Area(cfg arch.Config) float64 { return cfg.Area().Total() }

// LayerCost prices one compute layer per batch (inference only).
func (osDataflow) LayerCost(cfg arch.Config, l nn.Layer, phase sim.Phase) (metrics.Result, error) {
	if err := cfg.Validate(); err != nil {
		return metrics.Result{}, err
	}
	if phase != sim.Inference {
		return metrics.Result{}, fmt.Errorf("%w: %s cannot simulate %s", dataflow.ErrUnsupportedPhase, DataflowID, phase)
	}
	m := New(cfg)
	if !l.IsCompute() {
		return m.postProcess(l), nil
	}
	return scale(m.forwardLayer(l), float64(cfg.BatchSize)), nil
}

// Mapping space: iso-capacity aspect reshapes of the accumulator
// crossbar. Rows bound the output-position tile and columns the
// output-channel tile, so the aspect is a loop-order choice — tall
// tiles keep more positions resident (weights refetched less, the
// position loop effectively outer), wide tiles keep more channels
// resident (inputs refetched less). Legal points keep the cell count of
// the base array and stay within the multiplex bound.
const maxOSMultiplex = 64

var osAspects = [][2]int{{32, 512}, {64, 256}, {128, 128}, {256, 64}, {512, 32}}

func (d osDataflow) Mappings(base arch.Config, net *nn.Network) []dataflow.Mapping {
	out := []dataflow.Mapping{{}}
	if net == nil {
		return out
	}
	cells := base.SubarrayRows * base.SubarrayCols
	for _, a := range osAspects {
		if a[0]*a[1] != cells {
			continue
		}
		order := "balanced"
		switch {
		case a[0] > a[1]:
			order = "weight-reuse"
		case a[0] < a[1]:
			order = "input-reuse"
		}
		m := dataflow.Mapping{Rows: a[0], Cols: a[1], LoopOrder: order}
		cfg := d.Apply(base, m)
		if cfg == base {
			continue
		}
		if cfg.Validate() != nil {
			continue
		}
		if osWorstMultiplex(cfg, net) > maxOSMultiplex {
			continue
		}
		out = append(out, m)
	}
	return out
}

// osWorstMultiplex returns the worst per-layer time-multiplex factor.
func osWorstMultiplex(cfg arch.Config, net *nn.Network) int64 {
	m := New(cfg)
	worst := int64(1)
	for _, l := range net.Layers {
		if !l.IsCompute() {
			continue
		}
		g := m.layerGeometry(l)
		mux := (g.crossbars + int64(cfg.Subarrays()) - 1) / int64(cfg.Subarrays())
		if mux > worst {
			worst = mux
		}
	}
	return worst
}

func (osDataflow) Apply(base arch.Config, m dataflow.Mapping) arch.Config {
	cfg := base
	if m.Rows > 0 {
		cfg.SubarrayRows = m.Rows
	}
	if m.Cols > 0 {
		cfg.SubarrayCols = m.Cols
	}
	if m.Planes > 0 {
		cfg.StackedPlanes = m.Planes
	}
	if !m.IsZero() && cfg != base {
		cfg.Name = fmt.Sprintf("%s[%s]", base.Name, m.Label())
	}
	return cfg
}
