// Package outstat implements the third dataflow peer: an
// output-stationary 2D accelerator in the style of MAC-DO (see
// PAPERS.md). Each output element owns an in-array accumulator; partial
// products accumulate in place over the whole reduction dimension while
// BOTH operands stream past — inputs along rows, weights along columns
// — and every output is converted exactly once at the end of its
// accumulation. That inverts the WS cost structure: the per-cycle
// full-column ADC scans of ISAAC disappear (one conversion per output
// element instead of one per column per input-bit cycle), but neither
// operand is resident, so the memory hierarchy pays operand refetches
// per crossbar block.
//
// The output matrix of a layer — P output positions × N output
// channels — tiles onto crossbars holding SubarrayRows positions by
// SubarrayCols/weight-bits channels each. The tile aspect is the
// mapping knob: weights are refetched once per position block and
// inputs once per channel block, so tall tiles favor weight reuse and
// wide tiles favor input reuse. The reduction dimension K (kernel ×
// input channels) is purely temporal.
//
// Accumulating analog partial sums has no gradient path, so the
// backend is inference-only; the dataflow registry guards the training
// phase with dataflow.ErrUnsupportedPhase.
package outstat

import (
	"github.com/inca-arch/inca/internal/analog"
	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/mem"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/noc"
	"github.com/inca-arch/inca/internal/sim"
)

// Machine is a configured output-stationary accelerator.
type Machine struct {
	Cfg  arch.Config
	hier mem.Hierarchy
	adc  analog.ADC
	dac  analog.DAC
	dig  analog.Digital
	tree noc.HTree
}

// New builds a machine from a configuration (normally
// arch.OutStationary()).
func New(cfg arch.Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic("outstat: " + err.Error())
	}
	return &Machine{
		Cfg:  cfg,
		hier: mem.Hierarchy{Buf: cfg.Buffer, Dram: cfg.DRAM},
		adc:  analog.NewADC(cfg.ADCBits),
		dac:  analog.NewDAC(1),
		dig:  analog.NewDigital(),
		tree: noc.Standard(cfg.MacroSize, cfg.TileSize, cfg.Tiles),
	}
}

// geometry captures how one layer's output matrix tiles onto the
// accumulator crossbars.
type geometry struct {
	positions int64 // P: output positions (OH×OW, 1 for FC)
	channels  int64 // N: output channels
	depth     int64 // K: accumulation length per output element
	posBlocks int64 // output-position tiles (rows)
	chBlocks  int64 // output-channel tiles (columns)
	crossbars int64
	colsPerCh int64 // accumulator cells per output element (weight bits)
}

func (m *Machine) layerGeometry(l nn.Layer) geometry {
	var g geometry
	g.colsPerCh = int64(m.Cfg.WeightBits / m.Cfg.CellBits)
	switch l.Kind {
	case nn.Conv:
		g.positions = int64(l.OutH) * int64(l.OutW)
		g.channels = int64(l.OutC)
		g.depth = int64(l.KH) * int64(l.KW) * int64(l.InC)
	case nn.Depthwise:
		// No cross-channel accumulation: each output channel reduces only
		// its own K×K window.
		g.positions = int64(l.OutH) * int64(l.OutW)
		g.channels = int64(l.OutC)
		g.depth = int64(l.KH) * int64(l.KW)
	case nn.FC:
		g.positions = 1
		g.channels = int64(l.OutC)
		g.depth = int64(l.InC)
	default:
		return g
	}
	tp := int64(m.Cfg.SubarrayRows)
	tn := int64(m.Cfg.SubarrayCols) / g.colsPerCh
	if tn < 1 {
		tn = 1
	}
	g.posBlocks = (g.positions + tp - 1) / tp
	g.chBlocks = (g.channels + tn - 1) / tn
	g.crossbars = g.posBlocks * g.chBlocks
	return g
}

// pass charges one inference pass over a layer for a single image.
func (m *Machine) pass(g geometry, inputBytes, outputBytes int64) metrics.Result {
	var r metrics.Result
	if g.positions == 0 || g.depth == 0 {
		return r
	}
	actBits := int64(m.Cfg.ActivationBits)
	wBits := int64(m.Cfg.WeightBits)
	dev := m.Cfg.Device

	// --- Array events, per image ---
	// Each output element accumulates over K steps; a step drives wb
	// accumulator cells for actBits input-bit cycles. Half the driven
	// cycles carry a 1 bit on average (bit-serial operands).
	const activity = 0.5
	outputs := g.positions * g.channels
	macEvents := outputs * g.depth * g.colsPerCh * actBits
	r.Counts.RRAMReads = macEvents
	// One conversion per output element — the OS amortization that
	// removes WS's per-cycle column scans.
	r.Counts.ADCConversions = outputs * g.colsPerCh
	// Operand delivery: inputs stream along rows (one value feeds every
	// channel column of its block), weights along columns (one value
	// feeds every position row of its block); both are refetched once
	// per block on the other axis, bit-serially through 1-bit drivers.
	inputDrives := g.depth * g.positions * g.chBlocks * actBits
	weightDrives := g.depth * g.channels * g.posBlocks * wBits
	r.Counts.DACConversions = inputDrives + weightDrives
	// Final shift-accumulate of the converted bit-planes per output.
	adds := outputs * (g.colsPerCh + actBits)
	r.Counts.DigitalOps = adds
	// One settle write per finished accumulator.
	r.Counts.RRAMWrites = outputs * g.colsPerCh

	r.Energy.Add(metrics.RRAMArray, float64(macEvents)*activity*dev.ReadEnergyAvg())
	r.Energy.Add(metrics.ADC, m.adc.ConversionEnergy(r.Counts.ADCConversions))
	r.Energy.Add(metrics.DAC, float64(r.Counts.DACConversions)*activity*m.dac.EnergyPerConv)
	r.Energy.Add(metrics.Digital, float64(adds)*m.dig.AddEnergy)
	r.Energy.Add(metrics.RRAMArray, float64(r.Counts.RRAMWrites)*dev.WriteEnergy())

	// Interconnect: streamed operands broadcast across the blocks that
	// share them through the macro/tile H-tree.
	bcastIn, _ := m.tree.BroadcastCost(g.chBlocks)
	bcastW, _ := m.tree.BroadcastCost(g.posBlocks)
	r.Energy.Add(metrics.Digital,
		bcastIn*float64(g.depth*g.positions*actBits)*activity+
			bcastW*float64(g.depth*g.channels*wBits)*activity)

	// --- Memory traffic ---
	// Inputs: the layer's input map streams once per channel block.
	inputFetchBits := g.depth * g.positions * actBits * g.chBlocks
	resIn := m.hier.ResidentFraction(inputBytes)
	bufJ, dramJ, lat := m.hier.TrafficCost(inputFetchBits, resIn, false)
	r.Energy.Add(metrics.Buffer, bufJ)
	r.Energy.Add(metrics.DRAM, dramJ)
	memLat := lat
	r.Counts.BufferAccesses += m.Cfg.Buffer.Beats(inputFetchBits)
	r.Counts.DRAMAccesses += int64(float64(inputFetchBits/8) * (1 - resIn))

	// Weights: the kernel tensor streams once per position block.
	weightBytes := g.depth * g.channels * wBits / 8
	weightFetchBits := g.depth * g.channels * wBits * g.posBlocks
	resW := m.hier.ResidentFraction(weightBytes)
	bufJ, dramJ, lat = m.hier.TrafficCost(weightFetchBits, resW, false)
	r.Energy.Add(metrics.Buffer, bufJ)
	r.Energy.Add(metrics.DRAM, dramJ)
	memLat += lat
	r.Counts.BufferAccesses += m.Cfg.Buffer.Beats(weightFetchBits)
	r.Counts.DRAMAccesses += int64(float64(weightFetchBits/8) * (1 - resW))

	// Outputs: each element saves exactly once (the OS win over WS's
	// per-position output redirection).
	saveBits := outputs * actBits
	resOut := m.hier.ResidentFraction(outputBytes)
	bufJ, dramJ, lat = m.hier.TrafficCost(saveBits, resOut, true)
	r.Energy.Add(metrics.Buffer, bufJ)
	r.Energy.Add(metrics.DRAM, dramJ)
	memLat += lat
	r.Counts.BufferAccesses += m.Cfg.Buffer.Beats(saveBits)
	r.Counts.DRAMAccesses += int64(float64(saveBits/8) * (1 - resOut))

	// --- Latency ---
	// Crossbars run in parallel; a layer needing more crossbars than the
	// chip has time-multiplexes. The serial dimension per crossbar is
	// the K accumulation steps × input-bit cycles; conversions drain
	// through the shared ADCs once per output.
	multiplex := (g.crossbars + int64(m.Cfg.Subarrays()) - 1) / int64(m.Cfg.Subarrays())
	computeTime := float64(g.depth*actBits*multiplex) * dev.ReadPulse
	adcTime := float64(r.Counts.ADCConversions) * m.adc.ConvLatency / float64(m.Cfg.ADCCount())
	if adcTime > computeTime {
		computeTime = adcTime
	}
	if memLat > computeTime {
		r.Latency = memLat
	} else {
		r.Latency = computeTime
	}
	return r
}

// forwardLayer returns the per-image forward result for a compute layer.
func (m *Machine) forwardLayer(l nn.Layer) metrics.Result {
	g := m.layerGeometry(l)
	return m.pass(g, l.InputElems(), l.OutputElems())
}

// utilization returns in-use accumulator cells over allocated cells for
// a layer.
func (m *Machine) utilization(l nn.Layer) float64 {
	g := m.layerGeometry(l)
	if g.crossbars == 0 {
		return 0
	}
	useful := g.positions * g.channels * g.colsPerCh
	alloc := g.crossbars * int64(m.Cfg.SubarrayRows) * int64(m.Cfg.SubarrayCols)
	return float64(useful) / float64(alloc)
}

// Simulate executes one inference batch. Training is structurally
// unsupported (analog accumulators have no gradient path); the dataflow
// adapter rejects it before reaching the machine, and direct callers
// panic like the other legacy machines do on inputs they cannot run.
func (m *Machine) Simulate(net *nn.Network, phase sim.Phase) *sim.Report {
	if phase != sim.Inference {
		panic("outstat: output-stationary machine supports inference only")
	}
	rep := &sim.Report{
		Arch:    m.Cfg.Name,
		Network: net.Name,
		Phase:   phase,
		Batch:   m.Cfg.BatchSize,
	}
	b := int64(m.Cfg.BatchSize)

	var perLayerLat []float64
	var total metrics.Result
	for _, l := range net.Layers {
		if !l.IsCompute() {
			total = total.Plus(m.postProcess(l))
			continue
		}
		g := m.layerGeometry(l)
		lr := sim.LayerResult{
			Layer:          l,
			Utilization:    m.utilization(l),
			AllocatedCells: g.crossbars * int64(m.Cfg.SubarrayRows) * int64(m.Cfg.SubarrayCols),
		}
		layer := scale(m.forwardLayer(l), float64(b))
		lr.Result = layer
		rep.Layers = append(rep.Layers, lr)
		total = total.Plus(layer)
		perLayerLat = append(perLayerLat, layer.Latency/float64(b))
	}

	// Inference pipelines layer-wise like the WS baseline: one image
	// flows through all layers, subsequent images follow the bottleneck
	// stage.
	var sum, max float64
	for _, t := range perLayerLat {
		sum += t
		if t > max {
			max = t
		}
	}
	total.Latency = sum + float64(b-1)*max

	rep.Total = total
	return rep
}

// postProcess charges the digital ReLU / pooling / residual-add units
// for a non-compute layer (element-wise, pipelined behind the arrays).
func (m *Machine) postProcess(l nn.Layer) metrics.Result {
	var r metrics.Result
	var ops int64
	switch l.Kind {
	case nn.ReLU, nn.Add:
		ops = l.OutputElems()
	case nn.MaxPool, nn.AvgPool, nn.GlobalAvgPool:
		ops = l.InputElems()
	default:
		return r
	}
	ops *= int64(m.Cfg.BatchSize)
	r.Counts.DigitalOps = ops
	r.Energy.Add(metrics.Digital, float64(ops)*m.dig.AddEnergy)
	return r
}

// scale multiplies a result's energy, latency, and counts by f.
func scale(r metrics.Result, f float64) metrics.Result {
	out := metrics.Result{
		Energy:  r.Energy.Scaled(f),
		Latency: r.Latency * f,
	}
	out.Counts = metrics.Counts{
		RRAMReads:      int64(float64(r.Counts.RRAMReads) * f),
		RRAMWrites:     int64(float64(r.Counts.RRAMWrites) * f),
		ADCConversions: int64(float64(r.Counts.ADCConversions) * f),
		DACConversions: int64(float64(r.Counts.DACConversions) * f),
		BufferAccesses: int64(float64(r.Counts.BufferAccesses) * f),
		DRAMAccesses:   int64(float64(r.Counts.DRAMAccesses) * f),
		DigitalOps:     int64(float64(r.Counts.DigitalOps) * f),
	}
	return out
}
