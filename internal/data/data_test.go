package data

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if a.Len() != b.Len() {
		t.Fatal("length mismatch")
	}
	for i := range a.Samples {
		if a.Samples[i].Label != b.Samples[i].Label {
			t.Fatal("label sequence differs between identical configs")
		}
		if !a.Samples[i].Image.Equal(b.Samples[i].Image, 0) {
			t.Fatal("images differ between identical configs")
		}
	}
}

func TestGenerateShapeAndBalance(t *testing.T) {
	cfg := DefaultConfig()
	ds := Generate(cfg)
	if ds.Len() != cfg.Classes*cfg.PerClass {
		t.Fatalf("Len = %d, want %d", ds.Len(), cfg.Classes*cfg.PerClass)
	}
	counts := make([]int, cfg.Classes)
	for _, s := range ds.Samples {
		if s.Label < 0 || s.Label >= cfg.Classes {
			t.Fatalf("label %d out of range", s.Label)
		}
		counts[s.Label]++
		d := s.Image.Dims()
		if d[0] != 1 || d[1] != cfg.H || d[2] != cfg.W {
			t.Fatalf("image dims %v", d)
		}
	}
	for c, n := range counts {
		if n != cfg.PerClass {
			t.Fatalf("class %d has %d samples, want %d", c, n, cfg.PerClass)
		}
	}
}

func TestGenerateShuffled(t *testing.T) {
	ds := Generate(DefaultConfig())
	// The first PerClass samples must not all share a label.
	first := ds.Samples[0].Label
	same := 0
	for _, s := range ds.Samples[:30] {
		if s.Label == first {
			same++
		}
	}
	if same == 30 {
		t.Fatal("dataset does not look shuffled")
	}
}

func TestClassesAreDistinguishable(t *testing.T) {
	// Mean images of different classes should differ far more than mean
	// images of the same class across two generations with different
	// sample noise... simpler: class means must be pairwise distinct.
	cfg := DefaultConfig()
	cfg.NoiseStd = 0 // pure patterns
	ds := Generate(cfg)
	means := make([][]float64, cfg.Classes)
	counts := make([]int, cfg.Classes)
	for _, s := range ds.Samples {
		if means[s.Label] == nil {
			means[s.Label] = make([]float64, s.Image.Len())
		}
		for i, v := range s.Image.Data() {
			means[s.Label][i] += v
		}
		counts[s.Label]++
	}
	for c := range means {
		for i := range means[c] {
			means[c][i] /= float64(counts[c])
		}
	}
	for a := 0; a < cfg.Classes; a++ {
		for b := a + 1; b < cfg.Classes; b++ {
			dist := 0.0
			for i := range means[a] {
				d := means[a][i] - means[b][i]
				dist += d * d
			}
			if math.Sqrt(dist) < 0.5 {
				t.Fatalf("classes %d and %d are nearly identical (dist %v)", a, b, math.Sqrt(dist))
			}
		}
	}
}

func TestSplit(t *testing.T) {
	ds := Generate(DefaultConfig())
	train, test := ds.Split(0.25)
	if train.Len()+test.Len() != ds.Len() {
		t.Fatal("split lost samples")
	}
	if test.Len() != ds.Len()/4 {
		t.Fatalf("test size = %d, want %d", test.Len(), ds.Len()/4)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Config{Classes: 1, PerClass: 1, H: 16, W: 16})
}

func TestInvalidSplitPanics(t *testing.T) {
	ds := Generate(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ds.Split(0)
}
