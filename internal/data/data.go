// Package data generates the deterministic synthetic image-classification
// dataset used by the accuracy experiments (Tables I and VI).
//
// The paper trains on CIFAR-10/ImageNet with torchvision, neither of which
// is available offline; this generator substitutes a 10-class problem
// whose classes are oriented sinusoidal gratings with per-sample jitter
// and additive noise. Relative accuracy sensitivity to weight-vs-
// activation perturbation — the quantity Tables I and VI measure — is a
// property of the network and gradient structure, not of the specific
// images, so the substitution preserves the experiment (DESIGN.md §5).
package data

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/inca-arch/inca/internal/tensor"
)

// Sample is one labeled image.
type Sample struct {
	Image *tensor.Tensor // [1, H, W]
	Label int
}

// Dataset is a deterministic labeled image collection.
type Dataset struct {
	Classes int
	H, W    int
	Samples []Sample
}

// Config controls generation.
type Config struct {
	Classes    int
	H, W       int
	PerClass   int     // samples per class
	NoiseStd   float64 // additive pixel noise
	JitterFrac float64 // random phase jitter as a fraction of 2π
	Seed       int64
}

// DefaultConfig returns the configuration used by the accuracy benches:
// 10 classes of 16×16 gratings, 60 samples per class.
func DefaultConfig() Config {
	return Config{
		Classes:    10,
		H:          16,
		W:          16,
		PerClass:   60,
		NoiseStd:   0.9,
		JitterFrac: 0.5,
		Seed:       1234,
	}
}

// Generate builds the dataset. The same Config always yields the same
// samples.
func Generate(cfg Config) *Dataset {
	if cfg.Classes < 2 || cfg.PerClass < 1 || cfg.H < 4 || cfg.W < 4 {
		panic(fmt.Sprintf("data: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Classes: cfg.Classes, H: cfg.H, W: cfg.W}
	for class := 0; class < cfg.Classes; class++ {
		// Each class is a grating at a distinct orientation and frequency.
		theta := math.Pi * float64(class) / float64(cfg.Classes)
		freq := 1.5 + 0.5*float64(class%3)
		for s := 0; s < cfg.PerClass; s++ {
			img := tensor.New(1, cfg.H, cfg.W)
			phase := rng.Float64() * 2 * math.Pi * cfg.JitterFrac
			amp := 0.8 + 0.4*rng.Float64()
			for y := 0; y < cfg.H; y++ {
				for x := 0; x < cfg.W; x++ {
					u := (float64(x)/float64(cfg.W) - 0.5) * math.Cos(theta)
					v := (float64(y)/float64(cfg.H) - 0.5) * math.Sin(theta)
					val := amp*math.Sin(2*math.Pi*freq*(u+v)+phase) +
						rng.NormFloat64()*cfg.NoiseStd
					img.Set(val, 0, y, x)
				}
			}
			ds.Samples = append(ds.Samples, Sample{Image: img, Label: class})
		}
	}
	// Deterministic shuffle so class order does not bias per-sample SGD.
	rng.Shuffle(len(ds.Samples), func(i, j int) {
		ds.Samples[i], ds.Samples[j] = ds.Samples[j], ds.Samples[i]
	})
	return ds
}

// Split partitions the dataset into train and test subsets with the given
// test fraction, preserving determinism.
func (d *Dataset) Split(testFrac float64) (train, test *Dataset) {
	if testFrac <= 0 || testFrac >= 1 {
		panic(fmt.Sprintf("data: invalid test fraction %v", testFrac))
	}
	n := int(float64(len(d.Samples)) * testFrac)
	test = &Dataset{Classes: d.Classes, H: d.H, W: d.W, Samples: d.Samples[:n]}
	train = &Dataset{Classes: d.Classes, H: d.H, W: d.W, Samples: d.Samples[n:]}
	return train, test
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }
