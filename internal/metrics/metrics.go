// Package metrics defines the common accounting currency of the INCA
// reproduction: per-component energy, latency, raw event counts, and area.
// Both simulators (INCA and the WS baseline) and the GPU model emit these
// types, so every paper figure reduces to arithmetic over them.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Component identifies a hardware unit in the energy/area breakdown,
// matching the categories of the paper's Fig. 6 / Fig. 13b pie charts and
// Table V.
type Component int

// Breakdown components.
const (
	DRAM Component = iota
	Buffer
	RRAMArray
	ADC
	DAC
	Digital // adders, shift-accumulators, activation/pooling units
	numComponents
)

// Components lists all breakdown components in display order.
func Components() []Component {
	return []Component{DRAM, Buffer, RRAMArray, ADC, DAC, Digital}
}

// String returns the component's display name.
func (c Component) String() string {
	switch c {
	case DRAM:
		return "DRAM"
	case Buffer:
		return "Buffer"
	case RRAMArray:
		return "RRAM"
	case ADC:
		return "ADC"
	case DAC:
		return "DAC"
	case Digital:
		return "Digital"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Energy is a per-component energy tally in joules.
type Energy struct {
	byComponent [numComponents]float64
}

// Add deposits j joules against component c.
func (e *Energy) Add(c Component, j float64) {
	if j < 0 || math.IsNaN(j) {
		panic(fmt.Sprintf("metrics: invalid energy %v for %v", j, c))
	}
	e.byComponent[c] += j
}

// Of returns the energy charged to component c.
func (e Energy) Of(c Component) float64 { return e.byComponent[c] }

// Total returns the summed energy in joules.
func (e Energy) Total() float64 {
	t := 0.0
	for _, v := range e.byComponent {
		t += v
	}
	return t
}

// Plus returns the component-wise sum of e and o.
func (e Energy) Plus(o Energy) Energy {
	var r Energy
	for i := range e.byComponent {
		r.byComponent[i] = e.byComponent[i] + o.byComponent[i]
	}
	return r
}

// Scaled returns e with every component multiplied by f.
func (e Energy) Scaled(f float64) Energy {
	var r Energy
	for i := range e.byComponent {
		r.byComponent[i] = e.byComponent[i] * f
	}
	return r
}

// Share returns component c's fraction of the total (0 when empty).
func (e Energy) Share(c Component) float64 {
	t := e.Total()
	if t == 0 {
		return 0
	}
	return e.byComponent[c] / t
}

// String renders the breakdown compactly, e.g.
// "total 1.2mJ (DRAM 40.1%, Buffer 31.0%, ...)".
func (e Energy) String() string {
	var parts []string
	for _, c := range Components() {
		if e.byComponent[c] > 0 {
			parts = append(parts, fmt.Sprintf("%v %.1f%%", c, 100*e.Share(c)))
		}
	}
	return fmt.Sprintf("total %s (%s)", FormatEnergy(e.Total()), strings.Join(parts, ", "))
}

// Counts tallies raw hardware events; they are what the analytical
// simulators actually produce, with energy derived as counts × unit costs.
type Counts struct {
	RRAMReads      int64 // per-cell read events
	RRAMWrites     int64 // per-cell write events
	ADCConversions int64
	DACConversions int64
	BufferAccesses int64 // bus-width beats to/from on-chip buffers
	DRAMAccesses   int64 // bytes moved to/from DRAM
	DigitalOps     int64 // adder/shift/activation operations
}

// Plus returns the field-wise sum.
func (c Counts) Plus(o Counts) Counts {
	return Counts{
		RRAMReads:      c.RRAMReads + o.RRAMReads,
		RRAMWrites:     c.RRAMWrites + o.RRAMWrites,
		ADCConversions: c.ADCConversions + o.ADCConversions,
		DACConversions: c.DACConversions + o.DACConversions,
		BufferAccesses: c.BufferAccesses + o.BufferAccesses,
		DRAMAccesses:   c.DRAMAccesses + o.DRAMAccesses,
		DigitalOps:     c.DigitalOps + o.DigitalOps,
	}
}

// Result aggregates one simulated execution: energy, wall-clock latency,
// and the raw counts it was derived from.
type Result struct {
	Energy  Energy
	Latency float64 // seconds
	Counts  Counts
}

// Plus merges two results as if executed sequentially.
func (r Result) Plus(o Result) Result {
	return Result{
		Energy:  r.Energy.Plus(o.Energy),
		Latency: r.Latency + o.Latency,
		Counts:  r.Counts.Plus(o.Counts),
	}
}

// EnergyEfficiencyVs returns how many times more energy-efficient r is
// than the reference o (>1 means r is better).
func (r Result) EnergyEfficiencyVs(o Result) float64 {
	if r.Energy.Total() == 0 {
		return math.Inf(1)
	}
	return o.Energy.Total() / r.Energy.Total()
}

// SpeedupVs returns how many times faster r is than the reference o.
func (r Result) SpeedupVs(o Result) float64 {
	if r.Latency == 0 {
		return math.Inf(1)
	}
	return o.Latency / r.Latency
}

// Area is the Table V area breakdown in mm².
type Area struct {
	Buffer         float64
	Array          float64
	ADC            float64
	DAC            float64
	PostProcessing float64
	Others         float64
}

// Total returns the summed area.
func (a Area) Total() float64 {
	return a.Buffer + a.Array + a.ADC + a.DAC + a.PostProcessing + a.Others
}

// FormatEnergy renders joules with an adaptive SI prefix.
func FormatEnergy(j float64) string {
	switch {
	case j >= 1:
		return fmt.Sprintf("%.3g J", j)
	case j >= 1e-3:
		return fmt.Sprintf("%.3g mJ", j*1e3)
	case j >= 1e-6:
		return fmt.Sprintf("%.3g uJ", j*1e6)
	case j >= 1e-9:
		return fmt.Sprintf("%.3g nJ", j*1e9)
	case j > 0:
		return fmt.Sprintf("%.3g pJ", j*1e12)
	default:
		return "0 J"
	}
}

// FormatTime renders seconds with an adaptive SI prefix.
func FormatTime(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3g s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3g ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.3g us", s*1e6)
	case s > 0:
		return fmt.Sprintf("%.3g ns", s*1e9)
	default:
		return "0 s"
	}
}
