package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEnergyAddAndTotal(t *testing.T) {
	var e Energy
	e.Add(DRAM, 2e-9)
	e.Add(Buffer, 3e-9)
	e.Add(DRAM, 1e-9)
	if got := e.Of(DRAM); math.Abs(got-3e-9) > 1e-20 {
		t.Fatalf("Of(DRAM) = %v, want 3e-9", got)
	}
	if got := e.Total(); math.Abs(got-6e-9) > 1e-20 {
		t.Fatalf("Total = %v, want 6e-9", got)
	}
}

func TestEnergyAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative energy")
		}
	}()
	var e Energy
	e.Add(ADC, -1)
}

func TestEnergyPlusAndScale(t *testing.T) {
	var a, b Energy
	a.Add(ADC, 1)
	b.Add(ADC, 2)
	b.Add(DAC, 4)
	s := a.Plus(b)
	if s.Of(ADC) != 3 || s.Of(DAC) != 4 {
		t.Fatalf("Plus = %+v", s)
	}
	h := s.Scaled(0.5)
	if h.Of(ADC) != 1.5 || h.Of(DAC) != 2 {
		t.Fatalf("Scaled = %+v", h)
	}
}

func TestEnergyShare(t *testing.T) {
	var e Energy
	e.Add(DRAM, 3)
	e.Add(Buffer, 1)
	if got := e.Share(DRAM); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Share(DRAM) = %v, want 0.75", got)
	}
	var empty Energy
	if empty.Share(DRAM) != 0 {
		t.Fatal("Share on empty energy should be 0")
	}
}

func TestEnergyString(t *testing.T) {
	var e Energy
	e.Add(DRAM, 1e-3)
	s := e.String()
	if !strings.Contains(s, "DRAM") || !strings.Contains(s, "mJ") {
		t.Fatalf("String = %q", s)
	}
}

func TestCountsPlus(t *testing.T) {
	a := Counts{RRAMReads: 1, ADCConversions: 2, DRAMAccesses: 5}
	b := Counts{RRAMReads: 10, BufferAccesses: 3}
	s := a.Plus(b)
	if s.RRAMReads != 11 || s.ADCConversions != 2 || s.BufferAccesses != 3 || s.DRAMAccesses != 5 {
		t.Fatalf("Plus = %+v", s)
	}
}

func TestResultComparisons(t *testing.T) {
	var fast, slow Result
	fast.Latency = 1
	slow.Latency = 10
	fast.Energy.Add(ADC, 1)
	slow.Energy.Add(ADC, 20)
	if got := fast.SpeedupVs(slow); got != 10 {
		t.Fatalf("SpeedupVs = %v, want 10", got)
	}
	if got := fast.EnergyEfficiencyVs(slow); got != 20 {
		t.Fatalf("EnergyEfficiencyVs = %v, want 20", got)
	}
	var zero Result
	if !math.IsInf(zero.SpeedupVs(slow), 1) {
		t.Fatal("zero-latency speedup should be +Inf")
	}
}

func TestResultPlus(t *testing.T) {
	var a, b Result
	a.Latency = 1
	b.Latency = 2
	a.Energy.Add(DRAM, 5)
	b.Energy.Add(DRAM, 7)
	a.Counts.RRAMWrites = 3
	b.Counts.RRAMWrites = 4
	s := a.Plus(b)
	if s.Latency != 3 || s.Energy.Of(DRAM) != 12 || s.Counts.RRAMWrites != 7 {
		t.Fatalf("Result.Plus = %+v", s)
	}
}

func TestAreaTotal(t *testing.T) {
	a := Area{Buffer: 1, Array: 2, ADC: 3, DAC: 4, PostProcessing: 5, Others: 6}
	if a.Total() != 21 {
		t.Fatalf("Area.Total = %v, want 21", a.Total())
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		j    float64
		want string
	}{
		{2.5, "J"}, {2.5e-3, "mJ"}, {2.5e-6, "uJ"}, {2.5e-9, "nJ"}, {2.5e-12, "pJ"}, {0, "0 J"},
	}
	for _, c := range cases {
		if got := FormatEnergy(c.j); !strings.Contains(got, c.want) {
			t.Errorf("FormatEnergy(%v) = %q, want contains %q", c.j, got, c.want)
		}
	}
	if got := FormatTime(1.5e-6); !strings.Contains(got, "us") {
		t.Errorf("FormatTime = %q", got)
	}
	if got := FormatTime(0); got != "0 s" {
		t.Errorf("FormatTime(0) = %q", got)
	}
}

func TestComponentString(t *testing.T) {
	for _, c := range Components() {
		if c.String() == "" || strings.HasPrefix(c.String(), "Component(") {
			t.Errorf("component %d missing display name", int(c))
		}
	}
}

// PROPERTY: Plus is commutative and Total is additive.
func TestPropertyEnergyAdditive(t *testing.T) {
	f := func(a1, a2, b1, b2 uint16) bool {
		var a, b Energy
		a.Add(DRAM, float64(a1))
		a.Add(ADC, float64(a2))
		b.Add(DRAM, float64(b1))
		b.Add(Digital, float64(b2))
		ab := a.Plus(b)
		ba := b.Plus(a)
		if ab != ba {
			return false
		}
		return math.Abs(ab.Total()-(a.Total()+b.Total())) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// PROPERTY: shares always sum to 1 for non-empty tallies.
func TestPropertySharesSumToOne(t *testing.T) {
	f := func(vals [6]uint8) bool {
		var e Energy
		nonzero := false
		for i, v := range vals {
			if v > 0 {
				e.Add(Component(i), float64(v))
				nonzero = true
			}
		}
		if !nonzero {
			return true
		}
		sum := 0.0
		for _, c := range Components() {
			sum += e.Share(c)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
