// Package job is the crash-safe asynchronous sweep-job subsystem: a
// bounded runner pool executing submitted work on caller-detached
// contexts, with every lifecycle event appended to a CRC-framed journal
// so a SIGKILLed process recovers its jobs on the next boot.
//
// The durability split is deliberate: per-cell results are checkpointed
// through the content-addressed result store (internal/store) by the
// executor, while this package journals only the small control-plane
// facts — spec, state transitions, completed-cell counts, the terminal
// summary. A recovered job therefore re-runs its cell list against the
// store and pays only for cells that never checkpointed, producing a
// final body byte-identical to an uninterrupted run.
//
// Lifecycle: queued → running → succeeded | failed | cancelled. A job
// interrupted by shutdown (or SIGKILL) never reaches a terminal record;
// replaying the journal finds it non-terminal and Start requeues it
// with its resume count bumped.
package job

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// State is a job's lifecycle state.
type State string

// The job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final: no runner will touch the
// job again and its result (or error) is durable.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// Sentinel errors.
var (
	// ErrQueueFull reports a Submit rejected by queue-depth shedding:
	// every runner is busy and the wait queue is at capacity. The HTTP
	// layer maps it onto 503 + Retry-After.
	ErrQueueFull = errors.New("job: queue full")
	// ErrUnknownJob reports an operation on a job ID the manager does not
	// hold.
	ErrUnknownJob = errors.New("job: unknown job")
	// ErrClosed reports a Submit on a closed manager.
	ErrClosed = errors.New("job: manager closed")
	// ErrRunnerPanic reports an executor that panicked; the manager's
	// runner recovers it into this error so the job lands in a terminal
	// failed state instead of staying running forever — the same
	// vocabulary sweep.ErrEvalPanic establishes for cell evaluations.
	ErrRunnerPanic = errors.New("job: runner panicked")
)

// Exec executes one job: it reads the spec, reports progress through
// the job's SetTotal/AddDone hooks, and returns the terminal result
// body. The context is detached from any HTTP caller and ends only on
// cooperative cancel or manager shutdown; an Exec that returns the
// context's error after a shutdown leaves the job non-terminal, which
// is exactly what lets it resume on the next boot.
type Exec func(ctx context.Context, j *Job) ([]byte, error)

// Options configures a Manager. The zero value is production-usable.
type Options struct {
	// Runners bounds how many jobs execute concurrently; <= 0 means 2.
	// Job sweeps each draw their own worker pool from the process-wide
	// kernel budget, so a small runner count keeps the host subscribed,
	// not oversubscribed.
	Runners int
	// QueueDepth bounds how many submitted jobs may wait beyond the
	// running ones before Submit sheds with ErrQueueFull; <= 0 means 64.
	QueueDepth int
}

func (o Options) withDefaults() Options {
	if o.Runners <= 0 {
		o.Runners = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	return o
}

// Job is one submitted sweep job. All mutable state is guarded by the
// owning manager's mutex; executors touch it only through the exported
// methods.
type Job struct {
	m       *Manager
	id      string
	spec    []byte
	created int64

	state    State
	attempts int
	resumed  int
	total    int
	done     int
	traceID  string
	spanID   string
	body     []byte
	cost     []byte
	errMsg   string

	cancel          context.CancelFunc
	cancelRequested bool
}

// Snapshot is a point-in-time copy of a job's observable state — the
// GET /v1/jobs/{id} payload.
type Snapshot struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// CellsTotal and CellsDone are the checkpointed progress counters;
	// both zero until the executor sized the job.
	CellsTotal int `json:"cells_total"`
	CellsDone  int `json:"cells_done"`
	// Attempts counts runner pickups across the job's whole life,
	// including runs interrupted by a crash.
	Attempts int `json:"attempts"`
	// Resumed counts how many restarts requeued this job from the
	// journal.
	Resumed int    `json:"resumed,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	Error   string `json:"error,omitempty"`
	Created int64  `json:"created_unix_nano"`
}

// ID returns the job's stable content-derived identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the canonical request bytes the job was submitted with.
// The slice is shared and must be treated as read-only.
func (j *Job) Spec() []byte { return j.spec }

// Attempts returns how many times a runner has picked the job up.
func (j *Job) Attempts() int {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	return j.attempts
}

// SetTotal records the job's cell count and resets the done counter —
// the executor calls it once per run, before evaluating anything.
func (j *Job) SetTotal(n int) {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	j.total, j.done = n, 0
	j.m.appendLocked(jrecord{Op: opProgress, ID: j.id, Total: j.total, Done: j.done})
}

// AddDone checkpoints n more completed cells. Each call journals the
// running count, so a crash loses at most the cells completed since the
// last append — and those are still in the result store, so the resumed
// run replays them from disk anyway.
func (j *Job) AddDone(n int) {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	j.done += n
	j.m.appendLocked(jrecord{Op: opProgress, ID: j.id, Total: j.total, Done: j.done})
}

// Trace returns the job's journaled root span identity; empty strings
// before the first traced run.
func (j *Job) Trace() (traceID, spanID string) {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	return j.traceID, j.spanID
}

// SetTrace journals the job's root span identity on its first traced
// run; later calls are no-ops, so a resumed run keeps the original
// trace and its spans join the same tree.
func (j *Job) SetTrace(traceID, spanID string) {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	if j.traceID != "" || traceID == "" {
		return
	}
	j.traceID, j.spanID = traceID, spanID
	j.m.appendLocked(jrecord{Op: opTrace, ID: j.id, TraceID: traceID, SpanID: spanID})
}

// SetCost journals the run's cost summary — an opaque JSON document
// the serve layer both produces and consumes, so the job table stays
// ignorant of its shape. Each run overwrites the previous value: after
// a crash-and-resume the journaled summary is the final attempt's, the
// one whose cells produced the served result body.
func (j *Job) SetCost(b []byte) {
	if len(b) == 0 {
		return
	}
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	j.cost = b
	j.m.appendLocked(jrecord{Op: opCost, ID: j.id, Cost: string(b)})
}

// snapshotLocked copies the observable state; callers hold m.mu.
func (j *Job) snapshotLocked() Snapshot {
	return Snapshot{
		ID:         j.id,
		State:      j.state,
		CellsTotal: j.total,
		CellsDone:  j.done,
		Attempts:   j.attempts,
		Resumed:    j.resumed,
		TraceID:    j.traceID,
		Error:      j.errMsg,
		Created:    j.created,
	}
}

// Stats is the manager's counter snapshot for /metrics and readiness.
type Stats struct {
	// Queued and Running are gauges over the live job table.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// Completed, Failed, Cancelled, and Resumed are process-lifetime
	// counters (terminal states reached, journal requeues performed).
	Completed int64 `json:"completed_total"`
	Failed    int64 `json:"failed_total"`
	Cancelled int64 `json:"cancelled_total"`
	Resumed   int64 `json:"resumed_total"`
	// QueueDepth is the configured shedding bound.
	QueueDepth int `json:"queue_depth"`
	// TornRecords counts torn or corrupt journal tails truncated at
	// open — nonzero after recovering from a crash mid-append.
	TornRecords int64 `json:"torn_records"`
	// Jobs is the total job count in the table, terminal included.
	Jobs int `json:"jobs"`
}

// DeriveID returns the stable content-derived job ID for a canonical
// spec: "j" plus the first 16 hex digits of its SHA-256. Equal specs
// collapse onto one job, making submission idempotent.
func DeriveID(spec []byte) string {
	sum := sha256.Sum256(spec)
	return "j" + hex.EncodeToString(sum[:])[:16]
}

// Manager owns the job table, the journal, and the runner pool.
// Construct with Open, arm with Start, release with Close.
type Manager struct {
	opt Options

	mu        sync.Mutex
	jnl       *journal // nil when running memory-only (dir == "")
	jobs      map[string]*Job
	order     []string // submission/replay order for List
	recovered []*Job   // non-terminal journaled jobs awaiting Start
	exec      Exec
	started   bool
	closing   bool

	queue     chan *Job
	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup

	completed atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
	resumed   atomic.Int64
	torn      atomic.Int64

	now func() time.Time // test clock hook; nil means time.Now
}

// Open builds a Manager. With a non-empty dir the journal at
// dir/journal.log is replayed: terminal jobs come back with their
// result bodies servable, non-terminal ones are held for Start to
// requeue. An empty dir runs memory-only — jobs die with the process.
func Open(dir string, opt Options) (*Manager, error) {
	opt = opt.withDefaults()
	m := &Manager{
		opt:  opt,
		jobs: make(map[string]*Job),
		now:  time.Now,
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("job: %w", err)
		}
		jnl, recs, err := openJournal(filepath.Join(dir, "journal.log"))
		if err != nil {
			return nil, err
		}
		m.jnl = jnl
		m.torn.Store(jnl.torn)
		m.replay(recs)
	}
	// Queue capacity covers the configured depth plus one slot per
	// runner (a dequeued job frees its slot) plus every recovered job,
	// so Start's requeue can never block.
	m.queue = make(chan *Job, opt.Runners+opt.QueueDepth+len(m.recovered))
	m.runCtx, m.runCancel = context.WithCancel(context.Background())
	return m, nil
}

// replay folds the journal's records back into the job table. Unknown
// ops and references to unknown IDs are skipped — a newer journal
// format degrades to partial recovery, never to a failed boot.
func (m *Manager) replay(recs []jrecord) {
	for _, rec := range recs {
		if rec.Op == opSubmit {
			if _, ok := m.jobs[rec.ID]; ok {
				continue
			}
			m.jobs[rec.ID] = &Job{
				m:       m,
				id:      rec.ID,
				spec:    []byte(rec.Spec),
				created: rec.Created,
				state:   StateQueued,
			}
			m.order = append(m.order, rec.ID)
			continue
		}
		j, ok := m.jobs[rec.ID]
		if !ok {
			continue
		}
		switch rec.Op {
		case opRun:
			j.state = StateRunning
			j.attempts = rec.Attempt
		case opResume:
			j.resumed++
		case opTrace:
			j.traceID, j.spanID = rec.TraceID, rec.SpanID
		case opProgress:
			j.total, j.done = rec.Total, rec.Done
		case opCost:
			j.cost = []byte(rec.Cost)
		case opDone:
			j.state = rec.State
			j.body = []byte(rec.Body)
			j.errMsg = rec.Error
		}
	}
	for _, id := range m.order {
		if j := m.jobs[id]; !j.state.Terminal() {
			m.recovered = append(m.recovered, j)
		}
	}
}

// Start arms the manager: recovered jobs are requeued (their resume
// count journaled) and the runner pool spins up executing exec. Start
// is idempotent; only the first call takes effect.
func (m *Manager) Start(exec Exec) {
	m.mu.Lock()
	if m.started || m.closing {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.exec = exec
	for _, j := range m.recovered {
		j.state = StateQueued
		j.resumed++
		m.resumed.Add(1)
		m.appendLocked(jrecord{Op: opResume, ID: j.id})
		m.queue <- j // capacity covers every recovered job
	}
	m.recovered = nil
	m.mu.Unlock()
	for i := 0; i < m.opt.Runners; i++ {
		m.wg.Add(1)
		go m.runner()
	}
}

// Submit registers a job for the canonical spec bytes and returns its
// snapshot. The ID is content-derived, so resubmitting an identical
// spec returns the existing job (created == false) whatever its state —
// idempotent submission is what makes client retries safe. A full
// queue sheds with ErrQueueFull.
func (m *Manager) Submit(spec []byte) (Snapshot, bool, error) {
	id := DeriveID(spec)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closing {
		return Snapshot{}, false, ErrClosed
	}
	if j, ok := m.jobs[id]; ok {
		return j.snapshotLocked(), false, nil
	}
	j := &Job{
		m:       m,
		id:      id,
		spec:    append([]byte(nil), spec...),
		created: m.now().UnixNano(),
		state:   StateQueued,
	}
	select {
	case m.queue <- j:
	default:
		return Snapshot{}, false, ErrQueueFull
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.appendLocked(jrecord{Op: opSubmit, ID: id, Spec: string(j.spec), Created: j.created})
	return j.snapshotLocked(), true, nil
}

// Get returns a job's snapshot.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshotLocked(), true
}

// List returns every job's snapshot in submission order (replayed jobs
// keep their pre-crash order).
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].snapshotLocked())
	}
	return out
}

// Result returns a job's terminal result body (nil until the job
// succeeds) along with its snapshot.
func (m *Manager) Result(id string) ([]byte, Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, Snapshot{}, false
	}
	return j.body, j.snapshotLocked(), true
}

// Cost returns a job's journaled cost summary: the opaque JSON document
// the executor stored with SetCost, or false while no run has recorded
// one yet.
func (m *Manager) Cost(id string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || len(j.cost) == 0 {
		return nil, false
	}
	return j.cost, true
}

// Cancel requests cooperative cancellation: a queued job turns terminal
// immediately (runners skip it at pickup), a running job has its
// context cancelled and turns terminal when its executor returns.
// Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrUnknownJob
	}
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.errMsg = "cancelled before start"
		m.cancelled.Add(1)
		m.appendLocked(jrecord{Op: opDone, ID: j.id, State: StateCancelled, Error: j.errMsg})
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.snapshotLocked(), nil
}

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	queued, running := 0, 0
	for _, j := range m.jobs {
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	jobs := len(m.jobs)
	m.mu.Unlock()
	return Stats{
		Queued:      queued,
		Running:     running,
		Completed:   m.completed.Load(),
		Failed:      m.failed.Load(),
		Cancelled:   m.cancelled.Load(),
		Resumed:     m.resumed.Load(),
		QueueDepth:  m.opt.QueueDepth,
		TornRecords: m.torn.Load(),
		Jobs:        jobs,
	}
}

// Close stops the runner pool (cancelling running jobs' contexts),
// waits for runners to exit, and closes the journal. Interrupted jobs
// keep their non-terminal journal state, so the next Open recovers and
// requeues them — a graceful shutdown and a SIGKILL converge on the
// same resume path.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return nil
	}
	m.closing = true
	m.mu.Unlock()
	m.runCancel()
	m.wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jnl.close()
}

// appendLocked journals one record; callers hold m.mu. A failing disk
// degrades durability (the record is lost, the job resumes one step
// further back) but never liveness — the in-memory table is already
// updated, mirroring the result store's swallow-IO-errors stance.
func (m *Manager) appendLocked(rec jrecord) {
	_ = m.jnl.append(rec)
}

// runner is one pool goroutine: it drains the queue until the manager
// closes.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		select {
		case <-m.runCtx.Done():
			return
		case j := <-m.queue:
			m.runJob(j)
		}
	}
}

// runJob drives one job through running into a terminal state — or, on
// manager shutdown, leaves it non-terminal for the next boot to resume.
func (m *Manager) runJob(j *Job) {
	m.mu.Lock()
	if j.state != StateQueued {
		// Cancelled (or otherwise finished) while waiting in the queue.
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.attempts++
	ctx, cancel := context.WithCancel(m.runCtx)
	j.cancel = cancel
	m.appendLocked(jrecord{Op: opRun, ID: j.id, Attempt: j.attempts})
	m.mu.Unlock()

	body, err := m.protect(ctx, j)
	cancel()

	m.mu.Lock()
	defer m.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateSucceeded
		j.body = body
		m.completed.Add(1)
		m.appendLocked(jrecord{Op: opDone, ID: j.id, State: StateSucceeded, Body: string(body)})
	case j.cancelRequested:
		j.state = StateCancelled
		j.errMsg = err.Error()
		m.cancelled.Add(1)
		m.appendLocked(jrecord{Op: opDone, ID: j.id, State: StateCancelled, Error: j.errMsg})
	case m.closing && errors.Is(err, context.Canceled):
		// Shutdown interrupted the run: no terminal record, so the journal
		// still ends at "run" and the next Open requeues the job.
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		m.failed.Add(1)
		m.appendLocked(jrecord{Op: opDone, ID: j.id, State: StateFailed, Error: j.errMsg})
	}
}

// protect invokes the executor with panic recovery: a runner goroutine
// must survive any executor, and the job must land in a terminal failed
// state instead of staying running forever.
func (m *Manager) protect(ctx context.Context, j *Job) (body []byte, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("%w: %v", ErrRunnerPanic, rec)
		}
	}()
	return m.exec(ctx, j)
}
