package job

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, m *Manager, id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Snapshot{}
}

// waitState polls until the job reaches the given state.
func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if snap.State == want {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
	return Snapshot{}
}

func TestJobLifecycleSucceeds(t *testing.T) {
	m, err := Open("", Options{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Start(func(ctx context.Context, j *Job) ([]byte, error) {
		j.SetTotal(3)
		j.AddDone(1)
		j.AddDone(2)
		return []byte(`{"ok":true}` + "\n"), nil
	})
	spec := []byte(`{"models":["LeNet5"]}`)
	snap, created, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first submission should create the job")
	}
	if snap.ID != DeriveID(spec) {
		t.Fatalf("snapshot ID %q != derived %q", snap.ID, DeriveID(spec))
	}
	final := waitTerminal(t, m, snap.ID)
	if final.State != StateSucceeded {
		t.Fatalf("state = %s, want succeeded (err %q)", final.State, final.Error)
	}
	if final.CellsTotal != 3 || final.CellsDone != 3 {
		t.Fatalf("progress = %d/%d, want 3/3", final.CellsDone, final.CellsTotal)
	}
	if final.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", final.Attempts)
	}
	body, _, ok := m.Result(snap.ID)
	if !ok || string(body) != `{"ok":true}`+"\n" {
		t.Fatalf("result body = %q", body)
	}
	st := m.Stats()
	if st.Completed != 1 || st.Jobs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubmitIdempotent(t *testing.T) {
	m, err := Open("", Options{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Start(func(ctx context.Context, j *Job) ([]byte, error) {
		return []byte("{}"), nil
	})
	spec := []byte(`{"models":["LeNet5"]}`)
	first, created, err := m.Submit(spec)
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	again, created, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("identical spec must land on the existing job")
	}
	if again.ID != first.ID {
		t.Fatalf("IDs differ: %s vs %s", again.ID, first.ID)
	}
	other, created, err := m.Submit([]byte(`{"models":["VGG16"]}`))
	if err != nil || !created {
		t.Fatalf("distinct spec: created=%v err=%v", created, err)
	}
	if other.ID == first.ID {
		t.Fatal("distinct specs must derive distinct IDs")
	}
}

func TestQueueSheddingOverflow(t *testing.T) {
	m, err := Open("", Options{Runners: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	started := make(chan struct{})
	m.Start(func(ctx context.Context, j *Job) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	submit := func(i int) error {
		_, _, err := m.Submit([]byte(fmt.Sprintf(`{"n":%d}`, i)))
		return err
	}
	if err := submit(0); err != nil {
		t.Fatal(err)
	}
	<-started // the runner holds job 0; the queue is empty again
	// Queue capacity is Runners+QueueDepth = 2 slots.
	if err := submit(1); err != nil {
		t.Fatal(err)
	}
	if err := submit(2); err != nil {
		t.Fatal(err)
	}
	if err := submit(3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	if st := m.Stats(); st.Jobs != 3 {
		t.Fatalf("shed job must not enter the table: jobs = %d", st.Jobs)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	m, err := Open("", Options{Runners: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	started := make(chan struct{})
	m.Start(func(ctx context.Context, j *Job) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	running, _, err := m.Submit([]byte(`{"n":"running"}`))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, _, err := m.Submit([]byte(`{"n":"queued"}`))
	if err != nil {
		t.Fatal(err)
	}

	snap, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCancelled {
		t.Fatalf("queued job after cancel: state = %s, want cancelled", snap.State)
	}
	if _, err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, running.ID)
	if final.State != StateCancelled {
		t.Fatalf("running job after cancel: state = %s, want cancelled", final.State)
	}
	if _, err := m.Cancel("jdeadbeefdeadbeef"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown cancel: err = %v, want ErrUnknownJob", err)
	}
	if st := m.Stats(); st.Cancelled != 2 {
		t.Fatalf("cancelled counter = %d, want 2", st.Cancelled)
	}
}

func TestRunnerPanicReclaimsJobAsFailed(t *testing.T) {
	m, err := Open("", Options{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Start(func(ctx context.Context, j *Job) ([]byte, error) {
		panic("executor exploded")
	})
	snap, _, err := m.Submit([]byte(`{"n":"boom"}`))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, snap.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, ErrRunnerPanic.Error()) || !strings.Contains(final.Error, "executor exploded") {
		t.Fatalf("error %q should carry the panic vocabulary and value", final.Error)
	}
	// The pool survives: the next job runs on the same runner.
	next, _, err := m.Submit([]byte(`{"n":"after"}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, m, next.ID); got.State != StateFailed {
		t.Fatalf("post-panic job state = %s, want failed", got.State)
	}
}

func TestJournalReplayResumesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(dir, Options{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	progressed := make(chan struct{})
	m1.Start(func(ctx context.Context, j *Job) ([]byte, error) {
		j.SetTotal(4)
		j.AddDone(2)
		j.SetTrace("0123456789abcdef0123456789abcdef", "0123456789abcdef")
		close(progressed)
		<-ctx.Done() // simulate a long run interrupted by shutdown
		return nil, ctx.Err()
	})
	spec := []byte(`{"models":["LeNet5"],"phases":["inference"]}`)
	snap, _, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-progressed
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot over the same directory: the journal has submit+run+progress
	// but no terminal record, so the job must come back and requeue.
	m2, err := Open(dir, Options{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	pre, ok := m2.Get(snap.ID)
	if !ok {
		t.Fatal("interrupted job not replayed")
	}
	if pre.CellsTotal != 4 || pre.CellsDone != 2 {
		t.Fatalf("replayed progress = %d/%d, want 2/4", pre.CellsDone, pre.CellsTotal)
	}
	if pre.TraceID != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("replayed trace ID = %q", pre.TraceID)
	}
	var gotSpec string
	m2.Start(func(ctx context.Context, j *Job) ([]byte, error) {
		gotSpec = string(j.Spec())
		j.SetTotal(4)
		j.AddDone(4)
		return []byte(`{"resumed":true}` + "\n"), nil
	})
	final := waitTerminal(t, m2, snap.ID)
	if final.State != StateSucceeded {
		t.Fatalf("resumed state = %s (err %q)", final.State, final.Error)
	}
	if final.Resumed != 1 {
		t.Fatalf("resumed counter = %d, want 1", final.Resumed)
	}
	if final.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one interrupted, one resumed)", final.Attempts)
	}
	if gotSpec != string(spec) {
		t.Fatalf("resumed exec saw spec %q, want %q", gotSpec, spec)
	}
	if st := m2.Stats(); st.Resumed != 1 {
		t.Fatalf("stats resumed = %d, want 1", st.Resumed)
	}

	// Third boot: the terminal record replays, nothing requeues, and the
	// result body is servable without any executor at all.
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3, err := Open(dir, Options{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	body, got, ok := m3.Result(snap.ID)
	if !ok || got.State != StateSucceeded {
		t.Fatalf("terminal replay: ok=%v state=%s", ok, got.State)
	}
	if string(body) != `{"resumed":true}`+"\n" {
		t.Fatalf("replayed body = %q", body)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(dir, Options{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	m1.Start(func(ctx context.Context, j *Job) ([]byte, error) {
		return []byte(`{"ok":1}`), nil
	})
	snap, _, err := m1.Submit([]byte(`{"models":["LeNet5"]}`))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m1, snap.ID)
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "journal.log")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		muck func(t *testing.T)
	}{
		{"garbage-tail", func(t *testing.T) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("\xde\xad\xbe\xef torn mid-append")); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
		{"half-record", func(t *testing.T) {
			// A plausible header promising more payload than exists.
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0x40, 0, 0, 0, 1, 2, 3, 4, 'p', 'a', 'r', 't'}); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, pristine, 0o644); err != nil {
				t.Fatal(err)
			}
			tc.muck(t)
			m, err := Open(dir, Options{Runners: 1})
			if err != nil {
				t.Fatalf("open over torn journal: %v", err)
			}
			defer m.Close()
			if st := m.Stats(); st.TornRecords != 1 {
				t.Fatalf("torn records = %d, want 1", st.TornRecords)
			}
			body, got, ok := m.Result(snap.ID)
			if !ok || got.State != StateSucceeded || string(body) != `{"ok":1}` {
				t.Fatalf("surviving prefix lost: ok=%v state=%s body=%q", ok, got.State, body)
			}
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() != int64(len(pristine)) {
				t.Fatalf("journal not truncated back: %d bytes, want %d", fi.Size(), len(pristine))
			}
		})
	}

	t.Run("bad-magic", func(t *testing.T) {
		if err := os.WriteFile(path, []byte("NOTAJRNL whatever follows"), 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := Open(dir, Options{Runners: 1})
		if err != nil {
			t.Fatalf("open over bad magic: %v", err)
		}
		defer m.Close()
		if st := m.Stats(); st.TornRecords != 1 || st.Jobs != 0 {
			t.Fatalf("stats after reinit = %+v", st)
		}
	})
}

func TestSubmitAfterCloseFails(t *testing.T) {
	m, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.Start(func(ctx context.Context, j *Job) ([]byte, error) { return nil, nil })
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit([]byte(`{}`)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: err = %v, want ErrClosed", err)
	}
}
