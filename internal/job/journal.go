package job

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Journal framing mirrors internal/store's segment framing so the same
// crash-safety argument applies: an 8-byte magic, then length-prefixed
// records:
//
//	[4B little-endian payload length][4B IEEE CRC-32 of payload][payload]
//
// Only ever appended to, so a crash can tear at most the final record,
// and open truncates a torn tail instead of failing — the surviving
// prefix replays cleanly.
const (
	jnlMagic     = "INCAJNL1"
	recHeaderLen = 8
	// maxRecordBytes bounds a single record's payload: the largest
	// legitimate record is a terminal result body for a huge sweep, and
	// 16 MiB rejects a corrupt length prefix before it allocates
	// gigabytes.
	maxRecordBytes = 16 << 20
)

// Journal record operations. Each op is one append; replaying the
// sequence rebuilds the job table exactly.
const (
	opSubmit   = "submit"   // new job: id, spec, created
	opRun      = "run"      // a runner picked the job up: attempts
	opResume   = "resume"   // a restarted manager requeued the job
	opTrace    = "trace"    // the job's root span identity (first run)
	opProgress = "progress" // checkpoint: cells total/done so far
	opCost     = "cost"     // the run's cost summary (JSON), latest wins
	opDone     = "done"     // terminal: state, result body or error
)

// jrecord is the JSON payload of one journal record. Only the fields
// relevant to each op are populated; unknown ops are skipped at replay
// for forward compatibility. Spec and Body are JSON strings, not
// embedded raw messages: marshaling a json.RawMessage compacts it, and
// the replayed result body must be byte-identical to the one an
// uninterrupted run served (trailing newline included).
type jrecord struct {
	Op      string `json:"op"`
	ID      string `json:"id"`
	Spec    string `json:"spec,omitempty"`
	Created int64  `json:"created_unix_nano,omitempty"`
	State   State  `json:"state,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Total   int    `json:"total,omitempty"`
	Done    int    `json:"done,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
	Body    string `json:"body,omitempty"`
	Cost    string `json:"cost,omitempty"`
	Error   string `json:"error,omitempty"`
}

// journal is the append-only job log. All methods are called with the
// manager's mutex held, so appends are serialized.
type journal struct {
	f      *os.File
	size   int64
	torn   int64
	closed bool
}

// openJournal opens (creating if needed) the journal file and replays
// every cleanly framed record, truncating a torn or corrupt tail to the
// last good record — the same recovery the result store applies to its
// segments.
func openJournal(path string) (*journal, []jrecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("job: %w", err)
	}
	j := &journal{f: f}
	recs, good, err := j.scan()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("job: %w", err)
	}
	if good < fi.Size() {
		// Crash recovery: everything past the last good record is a torn
		// append. Drop it so the file is clean for future appends.
		j.torn++
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("job: truncating torn journal tail: %w", err)
		}
	}
	j.size = good
	return j, recs, nil
}

// scan walks the journal's records and returns every good one plus the
// offset of the first byte that is not part of a cleanly framed record
// (the truncation point for a torn tail).
func (j *journal) scan() ([]jrecord, int64, error) {
	r := bufio.NewReader(io.NewSectionReader(j.f, 0, 1<<62))
	magic := make([]byte, len(jnlMagic))
	if n, err := io.ReadFull(r, magic); err != nil {
		if n == 0 {
			// Brand-new journal: write the magic and start empty.
			return nil, int64(len(jnlMagic)), j.writeMagic()
		}
		// Shorter than the magic: unrecoverable prefix, reinitialize.
		j.torn++
		return nil, int64(len(jnlMagic)), j.writeMagic()
	}
	if string(magic) != jnlMagic {
		j.torn++
		return nil, int64(len(jnlMagic)), j.writeMagic()
	}
	var recs []jrecord
	off := int64(len(jnlMagic))
	header := make([]byte, recHeaderLen)
	for {
		if _, err := io.ReadFull(r, header); err != nil {
			return recs, off, nil // clean EOF or torn header: truncate here
		}
		n := binary.LittleEndian.Uint32(header[:4])
		sum := binary.LittleEndian.Uint32(header[4:])
		if n == 0 || n > maxRecordBytes {
			return recs, off, nil // corrupt length: everything past here is suspect
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, nil // bit rot or torn write caught by the CRC
		}
		var rec jrecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.ID == "" {
			return recs, off, nil // framed but undecodable: stop, do not replay
		}
		recs = append(recs, rec)
		off += recHeaderLen + int64(n)
	}
}

// writeMagic initializes an empty or unrecognizable journal file.
func (j *journal) writeMagic() error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("job: %w", err)
	}
	if _, err := j.f.WriteAt([]byte(jnlMagic), 0); err != nil {
		return fmt.Errorf("job: %w", err)
	}
	return nil
}

// append frames and appends one record. Errors are returned for the
// manager to count; the in-memory state is already updated by then, so
// a failing disk degrades durability, not liveness.
func (j *journal) append(rec jrecord) error {
	if j == nil || j.closed {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("job: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return errors.New("job: journal record exceeds the size bound")
	}
	framed := make([]byte, recHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(framed[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(framed[4:8], crc32.ChecksumIEEE(payload))
	copy(framed[recHeaderLen:], payload)
	if _, err := j.f.WriteAt(framed, j.size); err != nil {
		return fmt.Errorf("job: %w", err)
	}
	j.size += int64(len(framed))
	return nil
}

// close releases the file handle; later appends become no-ops.
func (j *journal) close() error {
	if j == nil || j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}
