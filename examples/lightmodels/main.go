// Lightmodels: reproduce the paper's light-model story (§V.B.4) — on
// MobileNetV2 and MNasNet, the weight-stationary baseline's utilization
// collapses (a 3×3 depthwise kernel uses nine of 128 cells in a column)
// while INCA's fine-grained 16×16 arrays stay busy, producing
// order-of-magnitude larger gains than on VGGs/ResNets.
//
//	go run ./examples/lightmodels
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/inca-arch/inca"
)

func main() {
	ctx := context.Background()
	incaMachine, err := inca.NewMachine("is", inca.Config{})
	if err != nil {
		log.Fatal(err)
	}
	baseMachine, err := inca.NewMachine("ws", inca.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("network       WS util   INCA util   energy-gain   speedup (training)")
	for _, name := range []string{"VGG16", "ResNet50", "MobileNetV2", "MNasNet"} {
		net, err := inca.Model(name)
		if err != nil {
			log.Fatal(err)
		}
		ir, err := incaMachine.Simulate(ctx, net, inca.Training)
		if err != nil {
			log.Fatal(err)
		}
		br, err := baseMachine.Simulate(ctx, net, inca.Training)
		if err != nil {
			log.Fatal(err)
		}
		cmp := inca.Compare(ir, br)
		fmt.Printf("%-12s  %6.1f%%   %7.1f%%   %9.1fx   %9.1fx\n",
			name, 100*br.Utilization(), 100*ir.Utilization(),
			cmp.EnergyRatio, cmp.Speedup)
	}

	fmt.Println("\nWhy: per-layer WS utilization of MobileNetV2's depthwise stages")
	net, _ := inca.Model("MobileNetV2")
	br, err := baseMachine.Simulate(ctx, net, inca.Inference)
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for _, lr := range br.Layers {
		if lr.Layer.Kind.String() != "dwconv" || shown >= 5 {
			continue
		}
		fmt.Printf("  %-40s util %5.2f%%\n", lr.Layer.String(), 100*lr.Utilization)
		shown++
	}
}
