// Insitu: train a CNN *through the RRAM array models themselves* — the
// paper's §IV.C dataflow executed functionally. Every convolution runs as
// direct convolution on 2T1R planes, FC layers run on channel-folded
// planes, ReLU gradients are AND gates, max pooling restores positions via
// its LUT, errors overwrite the activation cells, and updated weights go
// back to ordinary memory.
//
//	go run ./examples/insitu
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/inca-arch/inca"
)

func main() {
	cfg := inca.DefaultDataConfig()
	cfg.H, cfg.W = 12, 12
	cfg.Classes = 4
	cfg.PerClass = 40
	ds := inca.SyntheticDataset(cfg)
	trainSet, testSet := ds.Split(0.25)

	net := inca.BuildClassifier(inca.WithSeed(99), inca.WithInputShape(1, cfg.H, cfg.W), inca.WithClasses(cfg.Classes))
	machine := inca.NewInSitu(inca.InSituOptions{})

	fmt.Println("training entirely on the 2T1R array models...")
	for epoch := 1; epoch <= 5; epoch++ {
		loss := 0.0
		for _, s := range trainSet.Samples {
			loss += machine.TrainStep(net, s.Image, s.Label, 0.03)
		}
		fmt.Printf("epoch %d: loss %.3f, accuracy %.1f%%\n",
			epoch, loss/float64(trainSet.Len()), inca.ClassifierAccuracy(net, testSet))
	}

	st := machine.Stats()
	fmt.Printf("\ndevice events: %d cell reads, %d cell writes, %d analog outputs\n",
		st.CellReads, st.CellWrites, st.Outputs)

	// The same network evaluated with realistic device effects.
	quantized := inca.NewInSitu(inca.InSituOptions{WeightBits: 8, ActivationBits: 8, ADCBits: 4})
	correct := 0
	for _, s := range testSet.Samples {
		out := quantized.Forward(net, s.Image)
		best, bestV := 0, out.At(0)
		for i := 1; i < out.Len(); i++ {
			if out.At(i) > bestV {
				best, bestV = i, out.At(i)
			}
		}
		if best == s.Label {
			correct++
		}
	}
	fmt.Printf("accuracy with 8-bit operands + 4-bit ADC: %.1f%%\n",
		100*float64(correct)/float64(testSet.Len()))

	// Endurance outlook (§VI): how long do the activation cells last?
	sim, err := inca.NewMachine("is", inca.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sim.Simulate(context.Background(), mustModel("ResNet18"), inca.Training)
	if err != nil {
		log.Fatal(err)
	}
	for _, dev := range inca.DeviceCandidates() {
		p := inca.AnalyzeEndurance("INCA", inca.Training, dev, rep.Total.Latency)
		fmt.Printf("lifetime on %-18s %8.1f years of continuous training\n",
			dev.Name+":", p.LifetimeYears())
	}
}

func mustModel(name string) *inca.Network {
	n, err := inca.Model(name)
	if err != nil {
		panic(err)
	}
	return n
}
