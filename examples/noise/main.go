// Noise: demonstrate the paper's Limitation 4 at two levels.
//
// Array level: push the same convolution through INCA's 2T1R planes
// (noise lands on stored activations) and through a WS crossbar (noise
// lands on programmed weights) and compare output error.
//
// Training level: run a shortened Table VI — fine-tune under device noise
// on weights versus activations and watch only the weight case collapse.
//
//	go run ./examples/noise
package main

import (
	"fmt"
	"math"

	"github.com/inca-arch/inca"
)

func main() {
	// --- Array-level demonstration ---
	x := inca.RandnTensor(1, 1, 3, 12, 12) // [C,H,W]
	w := inca.RandnTensor(2, 0.3, 4, 3, 3, 3)

	ideal := inca.INCAFunctionalConv([]*inca.Tensor{x}, w, inca.INCAArrayOptions{Stride: 1, Pad: 1})[0]

	const sigma = 0.05
	isOut := inca.INCAFunctionalConv([]*inca.Tensor{x}, w, inca.INCAArrayOptions{
		Stride: 1, Pad: 1, Noise: inca.BuildNoiseModel(inca.WithNoise(sigma), inca.WithSeed(3)),
	})[0]
	wsOut := inca.WSFunctionalConv(x, w, inca.WSArrayOptions{
		Stride: 1, Pad: 1, Noise: inca.BuildNoiseModel(inca.WithNoise(sigma), inca.WithSeed(4)),
	})

	fmt.Printf("array-level output RMS error at sigma=%.0f%%:\n", sigma*100)
	fmt.Printf("  IS (noisy activations): %.4f\n", rmsErr(ideal, isOut))
	fmt.Printf("  WS (noisy weights):     %.4f\n", rmsErr(ideal, wsOut))

	// --- Training-level demonstration (shortened Table VI) ---
	cfg := inca.DefaultExperimentConfig()
	cfg.Data.PerClass = 30
	cfg.PretrainEpochs = 5
	cfg.NoiseEpochs = 6
	fmt.Println("\ntraining accuracy under device noise (shortened Table VI):")
	rows := inca.NoiseAccuracy(cfg, []float64{0.01, 0.05})
	for _, r := range rows {
		fmt.Printf("  sigma %.2f: weights (WS) %.1f%%, activations (IS) %.1f%% (clean %.1f%%)\n",
			r.Sigma, r.WeightNoise, r.ActivationAcc, r.BaselineNoNoise)
	}
}

func rmsErr(a, b *inca.Tensor) float64 {
	s := 0.0
	for i := range a.Data() {
		d := a.Data()[i] - b.Data()[i]
		s += d * d
	}
	return math.Sqrt(s / float64(a.Len()))
}
