// Quickstart: simulate one CNN on the INCA input-stationary accelerator
// and compare it against the weight-stationary baseline and the GPU.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/inca-arch/inca"
)

func main() {
	ctx := context.Background()
	net, err := inca.Model("ResNet18")
	if err != nil {
		log.Fatal(err)
	}

	incaSim, err := inca.NewMachine("is", inca.Config{})
	if err != nil {
		log.Fatal(err)
	}
	baseSim, err := inca.NewMachine("ws", inca.Config{})
	if err != nil {
		log.Fatal(err)
	}
	gpuSim, err := inca.NewMachine("gpu", inca.Config{})
	if err != nil {
		log.Fatal(err)
	}

	for _, phase := range []inca.Phase{inca.Inference, inca.Training} {
		fmt.Printf("--- %s on %s (batch 64) ---\n", phase, net.Name)
		incaRep, err := incaSim.Simulate(ctx, net, phase)
		if err != nil {
			log.Fatal(err)
		}
		baseRep, err := baseSim.Simulate(ctx, net, phase)
		if err != nil {
			log.Fatal(err)
		}
		gpuRep, err := gpuSim.Simulate(ctx, net, phase)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Println("INCA:    ", incaRep)
		fmt.Println("Baseline:", baseRep)
		fmt.Println("GPU:     ", gpuRep)

		cmp := inca.Compare(incaRep, baseRep)
		fmt.Printf("INCA vs baseline: %.1fx energy, %.1fx speed, %.0fx perf/W\n",
			cmp.EnergyRatio, cmp.Speedup, cmp.PerfPerWatt)
		gcmp := inca.Compare(incaRep, gpuRep)
		fmt.Printf("INCA vs GPU:      %.1fx energy, %.2fx speed\n\n",
			gcmp.EnergyRatio, gcmp.Speedup)
	}

	// The analytical access model behind the comparison (paper Table III).
	ac := inca.CountAccesses(net, 8, 256)
	fmt.Printf("Buffer accesses (8-bit/256-bit bus): WS %d, IS %d (%.1fx fewer)\n",
		ac.Baseline, ac.INCA, ac.Ratio())
}
