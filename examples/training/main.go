// Training: end-to-end in-situ training demonstration — train the compact
// CNN on the synthetic dataset with the engine behind Tables I and VI,
// then estimate what the same batch workload costs on INCA versus the WS
// baseline.
//
//	go run ./examples/training
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/inca-arch/inca"
)

func main() {
	cfg := inca.DefaultDataConfig()
	ds := inca.SyntheticDataset(cfg)
	trainSet, testSet := ds.Split(0.25)

	net := inca.BuildClassifier(inca.WithSeed(42), inca.WithInputShape(1, cfg.H, cfg.W), inca.WithClasses(cfg.Classes))
	fmt.Printf("dataset: %d train / %d test samples, %d classes\n",
		trainSet.Len(), testSet.Len(), cfg.Classes)
	fmt.Printf("accuracy before training: %.1f%%\n", inca.ClassifierAccuracy(net, testSet))

	trainer := &inca.Trainer{Net: net, LR: 0.02}
	for epoch := 1; epoch <= 8; epoch++ {
		loss := trainer.Train(trainSet, 1)
		fmt.Printf("epoch %d: loss %.3f, accuracy %.1f%%\n",
			epoch, loss, inca.ClassifierAccuracy(net, testSet))
	}

	// What would a training batch of LeNet5-class work cost in hardware?
	ctx := context.Background()
	hwNet, _ := inca.Model("LeNet5")
	ir, err := simulate(ctx, "is", hwNet)
	if err != nil {
		log.Fatal(err)
	}
	br, err := simulate(ctx, "ws", hwNet)
	if err != nil {
		log.Fatal(err)
	}
	cmp := inca.Compare(ir, br)
	fmt.Printf("\nhardware estimate for one %s training batch:\n", hwNet.Name)
	fmt.Println("  INCA:    ", ir)
	fmt.Println("  baseline:", br)
	fmt.Printf("  advantage: %.1fx energy, %.1fx speed\n", cmp.EnergyRatio, cmp.Speedup)
}

func simulate(ctx context.Context, dataflow string, net *inca.Network) (*inca.Report, error) {
	m, err := inca.NewMachine(dataflow, inca.Config{})
	if err != nil {
		return nil, err
	}
	return m.Simulate(ctx, net, inca.Training)
}
