package inca_test

import (
	"context"
	"fmt"

	"github.com/inca-arch/inca"
)

// Simulate a network on INCA and compare against the WS baseline.
func ExampleCompare() {
	net, _ := inca.Model("VGG16")
	incaRep := inca.NewINCA(inca.DefaultINCA()).Simulate(net, inca.Inference)
	baseRep := inca.NewBaseline(inca.DefaultBaseline()).Simulate(net, inca.Inference)
	cmp := inca.Compare(incaRep, baseRep)
	fmt.Printf("INCA wins energy: %v, wins speed: %v\n",
		cmp.EnergyRatio > 1, cmp.Speedup > 1)
	// Output: INCA wins energy: true, wins speed: true
}

// Evaluate the Table IV memory-footprint formulas.
func ExampleMemoryFootprint() {
	net, _ := inca.Model("VGG16")
	f, err := inca.MemoryFootprint(net)
	if err != nil {
		panic(err)
	}
	fmt.Printf("baseline RRAM %.1f MB, INCA RRAM %.1f MB\n", f.BaselineRRAM, f.INCARRAM)
	// Output: baseline RRAM 272.6 MB, INCA RRAM 8.7 MB
}

// Simulate through the v2 context-aware API.
func ExampleSimulator() {
	sim, err := inca.New(inca.DefaultINCA())
	if err != nil {
		panic(err)
	}
	net, _ := inca.Model("ResNet18")
	rep, err := sim.Simulate(context.Background(), net, inca.Inference)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Arch, rep.Network, rep.Batch)
	// Output: INCA ResNet18 64
}

// Fan the paper's full evaluation out over the sweep engine.
func ExampleRunSweep() {
	results, err := inca.RunSweep(context.Background(), inca.PaperSweep(), inca.SweepOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(results), "cells")
	// Output: 36 cells
}

// Count the Table III buffer accesses analytically.
func ExampleCountAccesses() {
	net, _ := inca.Model("VGG16")
	ac := inca.CountAccesses(net, 8, 256)
	fmt.Printf("IS needs %d accesses, WS needs more: %v\n", ac.INCA, ac.Baseline > ac.INCA)
	// Output: IS needs 459712 accesses, WS needs more: true
}

// Quantify the Fig. 7b unrolling blow-up that motivates direct convolution.
func ExampleCountUnroll() {
	net, _ := inca.Model("ResNet50")
	u := inca.CountUnroll(net)
	fmt.Printf("unrolling needs %.1fx more RRAM\n", u.Ratio())
	// Output: unrolling needs 2.0x more RRAM
}

// Run a convolution functionally through the 2T1R array models.
func ExampleINCAFunctionalConv() {
	x := inca.RandnTensor(1, 1, 2, 6, 6)
	w := inca.RandnTensor(2, 0.5, 3, 2, 3, 3)
	outs := inca.INCAFunctionalConv([]*inca.Tensor{x}, w, inca.INCAArrayOptions{Stride: 1, Pad: 1})
	fmt.Println(len(outs), outs[0].Dims())
	// Output: 1 [3 6 6]
}

// Analyze device endurance under the IS write pressure (§VI).
func ExampleAnalyzeEndurance() {
	dev := inca.DeviceCandidates()[0] // RRAM
	p := inca.AnalyzeEndurance("INCA", inca.Training, dev, 0.1)
	fmt.Printf("%s: %.0f writes/cell/batch\n", p.Device, p.WritesPerCellPerBatch)
	// Output: RRAM (TaOx/HfOx): 2 writes/cell/batch
}
