package inca_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/inca-arch/inca"
)

// TestServiceHandlerMatchesDirectFacade drives the exported service
// handler with 32 concurrent clients and asserts every response body is
// byte-identical to encoding the report from a direct inca.Simulate
// call — the service must be a transparent transport over the facade.
func TestServiceHandlerMatchesDirectFacade(t *testing.T) {
	ts := httptest.NewServer(inca.NewServiceHandler(inca.ServiceOptions{}))
	defer ts.Close()

	sm, err := inca.New(inca.DefaultINCA())
	if err != nil {
		t.Fatal(err)
	}
	net, err := inca.Model("ResNet18")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sm.Simulate(context.Background(), net, inca.Inference)
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	want := append(encoded, '\n')

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
				strings.NewReader(`{"arch":"inca","model":"ResNet18","phase":"inference"}`))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %.200s", resp.StatusCode, buf.Bytes())
				return
			}
			if !bytes.Equal(buf.Bytes(), want) {
				errs <- fmt.Errorf("served body differs from direct inca.Simulate encoding")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServiceSweepOverFacade runs a declarative sweep through the
// exported handler and sanity-checks the aggregate response shape.
func TestServiceSweepOverFacade(t *testing.T) {
	ts := httptest.NewServer(inca.NewServiceHandler(inca.ServiceOptions{}))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(
		`{"archs":["inca","baseline","gpu"],"models":["LeNet5"],"phases":["inference"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr inca.ServiceSweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(sr.Cells) != 3 || sr.Failed != 0 {
		t.Fatalf("status %d cells %d failed %d", resp.StatusCode, len(sr.Cells), sr.Failed)
	}
}
