package inca

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// TestNewMachineMatchesDeprecatedPath pins the redesign's byte-identity
// promise: a machine built through the registry produces exactly the
// report the deprecated constructors did.
func TestNewMachineMatchesDeprecatedPath(t *testing.T) {
	ctx := context.Background()
	net, err := Model("LeNet5")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dataflow string
		cfg      Config
	}{
		{"is", DefaultINCA()},
		{"ws", DefaultBaseline()},
	}
	for _, c := range cases {
		newStyle, err := NewMachine(c.dataflow, c.cfg)
		if err != nil {
			t.Fatalf("NewMachine(%s): %v", c.dataflow, err)
		}
		oldStyle, err := New(c.cfg)
		if err != nil {
			t.Fatalf("New(%s): %v", c.dataflow, err)
		}
		a, err := newStyle.Simulate(ctx, net, Inference)
		if err != nil {
			t.Fatal(err)
		}
		b, err := oldStyle.Simulate(ctx, net, Inference)
		if err != nil {
			t.Fatal(err)
		}
		var ab, bb bytes.Buffer
		if err := a.WriteCSV(&ab); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteCSV(&bb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
			t.Errorf("%s: registry path diverges from deprecated path", c.dataflow)
		}
	}
}

func TestNewMachineDefaultsAndOptions(t *testing.T) {
	ctx := context.Background()
	net, err := Model("LeNet5")
	if err != nil {
		t.Fatal(err)
	}
	// Zero Config uses the dataflow's default design point.
	m, err := NewMachine("os", Config{}, WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Simulate(ctx, net, Inference)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batch != 8 {
		t.Errorf("WithBatch(8) ignored: batch %d", rep.Batch)
	}
	// OS is inference-only; training surfaces the typed sentinel.
	if _, err := m.Simulate(ctx, net, Training); !errors.Is(err, ErrUnsupportedPhase) {
		t.Errorf("OS training: got %v, want ErrUnsupportedPhase", err)
	}
	// Legacy architecture names normalize to registry IDs.
	if _, err := NewMachine("INCA", Config{}); err != nil {
		t.Errorf("legacy name INCA rejected: %v", err)
	}
	if _, err := NewMachine("nonesuch", Config{}); !errors.Is(err, ErrUnknownDataflow) {
		t.Errorf("unknown dataflow: got %v, want ErrUnknownDataflow", err)
	}
	// WithMapping lowers a tuner point onto the base configuration.
	tuned, err := NewMachine("is", Config{}, WithMapping(Mapping{Rows: 32, Cols: 32, Planes: 64}))
	if err != nil {
		t.Fatal(err)
	}
	trep, err := tuned.Simulate(ctx, net, Inference)
	if err != nil {
		t.Fatal(err)
	}
	if trep.Arch == rep.Arch {
		t.Errorf("mapped machine reports the same arch name %q", trep.Arch)
	}
}

func TestDataflowsListing(t *testing.T) {
	infos := Dataflows()
	if len(infos) < 4 {
		t.Fatalf("got %d dataflows, want at least is/ws/os/gpu", len(infos))
	}
	seen := map[string]bool{}
	for _, d := range infos {
		seen[d.ID] = true
		if d.Name == "" || len(d.Phases) == 0 {
			t.Errorf("%s: incomplete capabilities %+v", d.ID, d)
		}
	}
	for _, want := range []string{"is", "ws", "os", "gpu"} {
		if !seen[want] {
			t.Errorf("registry missing %q (have %v)", want, infos)
		}
	}
}

func TestTuneSearchFacade(t *testing.T) {
	net, err := Model("ResNet18") // a paper model, end-to-end through the facade
	if err != nil {
		t.Fatal(err)
	}
	fronts, err := TuneSearch(context.Background(), net, TuneOptions{
		Dataflows: []string{"is", "os"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fronts) != 1 || len(fronts[0].Pareto) == 0 {
		t.Fatalf("no Pareto frontier from facade: %+v", fronts)
	}
	for _, c := range fronts[0].Pareto {
		if c.EnergyJ <= 0 || c.LatencyS <= 0 || c.AreaMM2 <= 0 {
			t.Errorf("%s: non-positive objective", c.Label)
		}
	}
}
