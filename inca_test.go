package inca

import (
	"context"
	"errors"
	"testing"
)

func TestFacadeModels(t *testing.T) {
	if len(Models()) != 6 {
		t.Fatalf("Models() = %d networks, want 6", len(Models()))
	}
	net, err := Model("VGG16")
	if err != nil || net.Name != "VGG16" {
		t.Fatalf("Model(VGG16) = %v, %v", net, err)
	}
	if _, err := Model("nope"); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestFacadeSimulateAndCompare(t *testing.T) {
	net, _ := Model("ResNet18")
	inca := NewINCA(DefaultINCA()).Simulate(net, Inference)
	base := NewBaseline(DefaultBaseline()).Simulate(net, Inference)
	cmp := Compare(inca, base)
	if cmp.EnergyRatio <= 1 || cmp.Speedup <= 1 {
		t.Fatalf("INCA should win both: %+v", cmp)
	}
	if cmp.PerfPerWatt != cmp.EnergyRatio*cmp.Speedup {
		t.Fatal("PerfPerWatt should be the product")
	}
}

func TestFacadeGPU(t *testing.T) {
	net, _ := Model("VGG16")
	rep := NewGPU().Simulate(net, Training)
	if rep.Total.Latency <= 0 || rep.Total.Energy.Total() <= 0 {
		t.Fatal("GPU simulation empty")
	}
	if GPUArea() != 754 {
		t.Fatalf("GPUArea = %v, want 754", GPUArea())
	}
}

func TestFacadeAnalyticalCounts(t *testing.T) {
	net, _ := Model("VGG16")
	ac := CountAccesses(net, 8, 256)
	if ac.Baseline <= ac.INCA {
		t.Fatal("WS should need more accesses than IS")
	}
	ub := CountUnroll(net)
	if ub.Ratio() <= 1 {
		t.Fatal("unrolled demand should exceed direct")
	}
}

func TestFacadeAreas(t *testing.T) {
	inca := DefaultINCA().Area()
	base := DefaultBaseline().Area()
	if inca.Total() >= base.Total() {
		t.Fatalf("INCA area %.1f should be below baseline %.1f (Table V)",
			inca.Total(), base.Total())
	}
}

func TestFacadeMemoryFootprint(t *testing.T) {
	net, _ := Model("VGG16")
	f, err := MemoryFootprint(net)
	if err != nil {
		t.Fatal(err)
	}
	// Table IV: baseline RRAM = 2W + A; INCA RRAM = A; buffers swap.
	if f.BaselineRRAM <= f.INCARRAM {
		t.Fatal("baseline RRAM must exceed INCA's (transposed weights + errors)")
	}
	if f.BaselineBuffer != f.INCARRAM || f.INCABuffer >= f.BaselineRRAM {
		t.Fatalf("footprint structure wrong: %+v", f)
	}
}

func TestFacadeTrainingAPIs(t *testing.T) {
	cfg := DefaultDataConfig()
	cfg.PerClass = 8
	ds := SyntheticDataset(cfg)
	if ds.Len() != 80 {
		t.Fatalf("dataset len = %d", ds.Len())
	}
	net := NewClassifier(1, 1, cfg.H, cfg.W, cfg.Classes)
	acc := ClassifierAccuracy(net, ds)
	if acc < 0 || acc > 100 {
		t.Fatalf("accuracy out of range: %v", acc)
	}
	tr := &Trainer{Net: net, LR: 0.02}
	if loss := tr.Train(ds, 1); loss <= 0 {
		t.Fatalf("training loss = %v", loss)
	}
}

func TestFacadeFunctionalConvsAgree(t *testing.T) {
	x := RandnTensor(1, 1, 2, 8, 8)
	w := RandnTensor(2, 0.5, 3, 2, 3, 3)
	is := INCAFunctionalConv([]*Tensor{x}, w, INCAArrayOptions{Stride: 1, Pad: 1})[0]
	ws := WSFunctionalConv(x, w, WSArrayOptions{Stride: 1, Pad: 1})
	if !is.Equal(ws, 1e-9) {
		t.Fatal("functional paths disagree through the facade")
	}
}

func TestFacadeInSitu(t *testing.T) {
	net := NewClassifier(2, 1, 12, 12, 3)
	m := NewInSitu(InSituOptions{})
	x := RandnTensor(3, 1, 1, 12, 12)
	hw := m.Forward(net, x)
	sw := net.Forward(x)
	if !hw.Equal(sw, 1e-9) {
		t.Fatal("in-situ forward should match software forward")
	}
}

func TestFacadePlacement(t *testing.T) {
	net, _ := Model("LeNet5")
	p := PlaceNetwork(DefaultINCA(), net)
	if len(p.Assignments) != len(net.ComputeLayers()) {
		t.Fatalf("placement covers %d layers, want %d",
			len(p.Assignments), len(net.ComputeLayers()))
	}
	if p.Rounds != 1 {
		t.Fatalf("LeNet5 should fit in one chip pass, got %d rounds", p.Rounds)
	}
}

func TestFacadeLoadConfig(t *testing.T) {
	path := t.TempDir() + "/cfg.json"
	cfg := DefaultBaseline()
	cfg.ADCBits = 6
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil || got.ADCBits != 6 || got.Name != "WS-Baseline" {
		t.Fatalf("LoadConfig = %+v, %v", got, err)
	}
	if _, err := LoadConfig(path + ".missing"); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestFacadeTimeline(t *testing.T) {
	net, _ := Model("LeNet5")
	base := NewBaseline(DefaultBaseline()).Simulate(net, Inference)
	g, err := Timeline(base, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) < 100 || g == "(empty schedule)\n" {
		t.Fatalf("timeline too small:\n%s", g)
	}
	inca := NewINCA(DefaultINCA()).Simulate(net, Inference)
	gi, err := Timeline(inca, 4, 80)
	if err != nil || gi == g {
		t.Fatalf("INCA and baseline timelines should differ (err %v)", err)
	}
	trn := NewBaseline(DefaultBaseline()).Simulate(net, Training)
	gt, err := Timeline(trn, 2, 80)
	if err != nil || gt == g {
		t.Fatalf("training timeline should differ from inference (err %v)", err)
	}
}

func TestFacadeErrorSentinels(t *testing.T) {
	if _, err := Timeline(nil, 4, 80); !errors.Is(err, ErrEmptyReport) {
		t.Fatalf("Timeline(nil) err = %v, want ErrEmptyReport", err)
	}
	if _, err := Timeline(&Report{}, 4, 80); !errors.Is(err, ErrEmptyReport) {
		t.Fatalf("Timeline(layerless) err = %v, want ErrEmptyReport", err)
	}
	net, _ := Model("LeNet5")
	rep := NewINCA(DefaultINCA()).Simulate(net, Inference)
	zeroBatch := *rep
	zeroBatch.Batch = 0
	if _, err := Timeline(&zeroBatch, 4, 80); !errors.Is(err, ErrZeroBatch) {
		t.Fatalf("Timeline(zero batch) err = %v, want ErrZeroBatch", err)
	}
	if _, err := MemoryFootprint(nil); !errors.Is(err, ErrNilNetwork) {
		t.Fatalf("MemoryFootprint(nil) err = %v, want ErrNilNetwork", err)
	}
	if _, err := MemoryFootprint(&Network{Name: "empty"}); !errors.Is(err, ErrEmptyNetwork) {
		t.Fatalf("MemoryFootprint(empty) err = %v, want ErrEmptyNetwork", err)
	}
	if _, err := zeroBatch.EnergyPerImage(); !errors.Is(err, ErrZeroBatch) {
		t.Fatalf("EnergyPerImage(zero batch) err = %v, want ErrZeroBatch", err)
	}
}

func TestFacadeSimulatorV2(t *testing.T) {
	ctx := context.Background()
	s, err := New(DefaultINCA())
	if err != nil {
		t.Fatal(err)
	}
	net, _ := Model("ResNet18")
	rep, err := s.Simulate(ctx, net, Inference)
	if err != nil || rep.Arch != "INCA" {
		t.Fatalf("Simulate = %v, %v", rep, err)
	}
	// The v2 path must agree byte-for-byte with the deprecated adapter.
	if rep.String() != NewINCA(DefaultINCA()).Simulate(net, Inference).String() {
		t.Fatal("v2 and legacy INCA reports disagree")
	}
	ws, err := New(DefaultBaseline())
	if err != nil {
		t.Fatal(err)
	}
	wsRep, err := ws.Simulate(ctx, net, Training)
	if err != nil || wsRep.Arch != "WS-Baseline" {
		t.Fatalf("baseline Simulate = %v, %v", wsRep, err)
	}
	if _, err := NewGPUSimulator().Simulate(ctx, net, Training); err != nil {
		t.Fatalf("gpu Simulate err = %v", err)
	}

	if _, err := s.Simulate(ctx, nil, Inference); !errors.Is(err, ErrNilNetwork) {
		t.Fatalf("nil network err = %v, want ErrNilNetwork", err)
	}
	if _, err := s.Simulate(ctx, net, Phase(99)); err == nil {
		t.Fatal("unknown phase should error")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.Simulate(cancelled, net, Inference); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx err = %v, want context.Canceled", err)
	}
	bad := DefaultINCA()
	bad.BatchSize = 0
	if _, err := New(bad); err == nil {
		t.Fatal("invalid config should error instead of panicking")
	}
}

func TestFacadeFunctionalOptions(t *testing.T) {
	// Option-built and positional constructors must agree exactly.
	a := BuildClassifier(WithSeed(7), WithInputShape(1, 12, 12), WithClasses(3))
	b := NewClassifier(7, 1, 12, 12, 3)
	x := RandnTensor(5, 1, 1, 12, 12)
	if !a.Forward(x).Equal(b.Forward(x), 0) {
		t.Fatal("BuildClassifier disagrees with NewClassifier at equal settings")
	}
	n1 := BuildNoiseModel(WithNoise(0.02), WithSeed(3))
	n2 := NewNoiseModel(0.02, 3)
	if n1.Perturb(1, 1) != n2.Perturb(1, 1) {
		t.Fatal("BuildNoiseModel disagrees with NewNoiseModel at equal settings")
	}
	// Defaults pair with the synthetic dataset.
	ds := SyntheticDataset(DefaultDataConfig())
	if acc := ClassifierAccuracy(BuildClassifier(), ds); acc < 0 || acc > 100 {
		t.Fatalf("default BuildClassifier accuracy out of range: %v", acc)
	}
}

func TestFacadeEndurance(t *testing.T) {
	devs := DeviceCandidates()
	if len(devs) != 4 {
		t.Fatalf("device candidates = %d, want 4", len(devs))
	}
	p := AnalyzeEndurance("INCA", Training, devs[0], 0.1)
	if p.WritesPerCellPerBatch != 2 {
		t.Fatalf("IS training writes/cell/batch = %v, want 2", p.WritesPerCellPerBatch)
	}
	ws := AnalyzeEndurance("WS-Baseline", Training, devs[0], 0.1)
	if ws.LifetimeSeconds <= p.LifetimeSeconds {
		t.Fatal("WS training should outlast IS on the same device")
	}
}

func TestFacadeFaultInjectionAndRetry(t *testing.T) {
	// A sweep under 30% injected transient faults completes via retries
	// with byte-identical results to a fault-free run.
	lenet, err := Model("LeNet5")
	if err != nil {
		t.Fatal(err)
	}
	plan := SweepPlan{
		Archs:    []SweepArch{SweepINCA()},
		Networks: []*Network{lenet},
		Phases:   []Phase{Inference, Training},
	}
	clean, err := RunSweep(context.Background(), plan, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	inj := NewFaultInjector(42)
	inj.Add(FaultRule{Site: "sweep/cell/*", Kind: FaultError, Prob: 0.3})
	retried, err := RunSweep(context.Background(), plan, SweepOptions{
		Inject: inj,
		Retry:  SweepRetryPolicy{MaxAttempts: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(retried) != len(clean) {
		t.Fatalf("cell counts differ: %d vs %d", len(retried), len(clean))
	}
	for i := range retried {
		if retried[i].Err != nil {
			t.Fatalf("cell %d failed despite retries: %v", i, retried[i].Err)
		}
		if retried[i].Report.Total != clean[i].Report.Total {
			t.Fatalf("cell %d diverged under injected faults", i)
		}
	}

	if !IsTransient(MarkTransient(errors.New("flaky"))) {
		t.Fatal("MarkTransient/IsTransient disagree")
	}
	if IsTransient(errors.New("plain")) {
		t.Fatal("unmarked error classified transient")
	}
}

func TestFacadeClientConstruction(t *testing.T) {
	c, err := NewClient("http://127.0.0.1:1", ClientOptions{MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Models(context.Background()); err == nil {
		t.Fatal("dead endpoint answered")
	}
	if _, err := NewClient("not a url", ClientOptions{}); err == nil {
		t.Fatal("bad base URL accepted")
	}
	var apiErr *APIError
	wrapped := error(&APIError{Status: 503, Message: "saturated"})
	if !errors.As(wrapped, &apiErr) || !IsTransient(wrapped) {
		t.Fatal("503 APIError should classify transient")
	}
	if IsTransient(&APIError{Status: 400}) {
		t.Fatal("400 APIError should be terminal")
	}
}

func TestFacadeStuckFaultAccuracy(t *testing.T) {
	cfg := DefaultExperimentConfig()
	cfg.Data.PerClass = 24
	cfg.PretrainEpochs = 4
	rows := StuckFaultAccuracy(cfg, []float64{0, 0.5})
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Stuck != 0 || rows[0].Accuracy != rows[0].Clean {
		t.Fatalf("rate 0 should be the clean model: %+v", rows[0])
	}
	if rows[1].Stuck == 0 || rows[1].Accuracy >= rows[1].Clean {
		t.Fatalf("half-dead devices did not hurt accuracy: %+v", rows[1])
	}
}
