module github.com/inca-arch/inca

go 1.22
