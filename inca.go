// Package inca is the public API of the INCA reproduction: an
// input-stationary (IS) RRAM crossbar accelerator simulator with its
// weight-stationary (WS) baseline, GPU reference model, DNN model zoo,
// and the accuracy experiments of the paper
//
//	"INCA: Input-stationary Dataflow at Outside-the-box Thinking about
//	 Deep Learning Accelerators", Kim, Li & Li, HPCA 2023.
//
// Quickstart:
//
//	cfg := inca.DefaultINCA()
//	machine := inca.NewINCA(cfg)
//	net, _ := inca.Model("ResNet18")
//	rep := machine.Simulate(net, inca.Inference)
//	fmt.Println(rep)
//
// Compare against the WS baseline:
//
//	base := inca.NewBaseline(inca.DefaultBaseline())
//	cmp := inca.Compare(rep, base.Simulate(net, inca.Inference))
//	fmt.Printf("%.1fx energy, %.1fx speed\n", cmp.EnergyRatio, cmp.Speedup)
package inca

import (
	"math/rand"

	"github.com/inca-arch/inca/internal/access"
	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/baseline"
	"github.com/inca-arch/inca/internal/core"
	"github.com/inca-arch/inca/internal/data"
	"github.com/inca-arch/inca/internal/endure"
	"github.com/inca-arch/inca/internal/gpu"
	"github.com/inca-arch/inca/internal/insitu"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/place"
	"github.com/inca-arch/inca/internal/rram"
	"github.com/inca-arch/inca/internal/sched"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/tensor"
	"github.com/inca-arch/inca/internal/train"
)

// Phase selects inference or training simulation.
type Phase = sim.Phase

// Simulation phases.
const (
	Inference = sim.Inference
	Training  = sim.Training
)

// Config is a full accelerator configuration (paper Table II).
type Config = arch.Config

// DefaultINCA returns the paper's INCA configuration: 16×16×64 3D 2T1R
// arrays, 4-bit ADCs shared 16-ways, 64 KB buffers, HBM2, batch 64.
func DefaultINCA() Config { return arch.INCA() }

// DefaultBaseline returns the paper's 2D WS baseline: 128×128 crossbars,
// 8-bit ADCs, the same memory system.
func DefaultBaseline() Config { return arch.Baseline() }

// Network is a shape-level DNN description.
type Network = nn.Network

// Report is a simulated execution result.
type Report = sim.Report

// Area is a Table V-style area breakdown in mm².
type Area = metrics.Area

// Model returns a zoo network by name: VGG16, VGG19, ResNet18, ResNet50,
// MobileNetV2, MNasNet, VGG16-CIFAR, ResNet18-CIFAR, LeNet5.
func Model(name string) (*Network, error) { return nn.ByName(name) }

// Models returns the six ImageNet networks of the paper's evaluation.
func Models() []*Network { return nn.PaperModels() }

// Machine simulates a network execution on some architecture.
type Machine interface {
	Simulate(net *Network, phase Phase) *Report
}

// NewINCA builds the input-stationary accelerator simulator.
func NewINCA(cfg Config) Machine { return core.New(cfg) }

// NewBaseline builds the weight-stationary baseline simulator.
func NewBaseline(cfg Config) Machine { return baseline.New(cfg) }

// NewGPU builds the Titan RTX roofline model of Fig. 15.
func NewGPU() Machine { return gpu.New(gpu.TitanRTX()) }

// GPUArea returns the GPU die area (mm²) for iso-area comparisons.
func GPUArea() float64 { return gpu.TitanRTX().AreaMM2 }

// Comparison summarizes an A-versus-B report pair. EnergyRatio and
// Speedup are B's cost over A's (>1 means A wins); PerfPerWatt is their
// product — the throughput-per-watt improvement the paper's Fig. 11
// reports as "energy efficiency".
type Comparison struct {
	EnergyRatio float64
	Speedup     float64
	PerfPerWatt float64
}

// Compare evaluates a against the reference b.
func Compare(a, b *Report) Comparison {
	e := a.Total.EnergyEfficiencyVs(b.Total)
	s := a.Total.SpeedupVs(b.Total)
	return Comparison{EnergyRatio: e, Speedup: s, PerfPerWatt: e * s}
}

// AccessCounts returns the Table III buffer-access estimates (Eq. 5/6)
// for a network at the given precision and bus width.
type AccessCounts = access.NetworkAccesses

// CountAccesses evaluates both dataflows' analytical access counts.
func CountAccesses(net *Network, precBits, busBits int64) AccessCounts {
	return access.CountNetwork(net, precBits, busBits)
}

// UnrollBlowup quantifies Fig. 7b's unrolled-versus-direct RRAM demand.
type UnrollBlowup = access.UnrollBlowup

// CountUnroll evaluates the Fig. 7b comparison for a network.
func CountUnroll(net *Network) UnrollBlowup { return access.CountUnroll(net) }

// Footprint is the Table IV minimum memory requirement (MB) for
// supporting both inference and training. In WS, RRAM must hold the
// original weights, their transposed copies, and the activations, while
// buffers stage the activations; in IS, RRAM holds only the activations
// (errors overwrite them) and buffers hold the weights.
type Footprint struct {
	Network                      string
	BaselineRRAM, BaselineBuffer float64
	INCARRAM, INCABuffer         float64
}

// MemoryFootprint evaluates Table IV's formulas for a network at 8-bit
// precision.
func MemoryFootprint(net *Network) Footprint {
	const mb = 1024 * 1024
	w := float64(net.TotalWeights()) / mb
	a := float64(net.TotalActivations()) / mb
	return Footprint{
		Network:        net.Name,
		BaselineRRAM:   2*w + a,
		BaselineBuffer: a,
		INCARRAM:       a,
		INCABuffer:     w,
	}
}

// Accuracy experiment re-exports (Tables I and VI).
type (
	// ExperimentConfig sizes the accuracy experiments.
	ExperimentConfig = train.ExperimentConfig
	// NoiseAccuracyRow is one Table VI row.
	NoiseAccuracyRow = train.NoiseAccuracyRow
	// BitDepthRow is one Table I column pair.
	BitDepthRow = train.BitDepthRow
)

// DefaultExperimentConfig mirrors the paper's accuracy protocol at the
// synthetic dataset's scale.
func DefaultExperimentConfig() ExperimentConfig { return train.DefaultExperimentConfig() }

// NoiseAccuracy reproduces Table VI: training accuracy under device noise
// of strength σ applied to weights (WS exposure) versus activations (IS
// exposure).
func NoiseAccuracy(cfg ExperimentConfig, sigmas []float64) []NoiseAccuracyRow {
	return train.NoiseAccuracyTable(cfg, sigmas)
}

// BitDepthAccuracy reproduces Table I: post-training quantization drops
// with one operand reduced below 8 bits.
func BitDepthAccuracy(cfg ExperimentConfig, bits []int) []BitDepthRow {
	return train.BitDepthTable(cfg, bits)
}

// --- Training engine (the software substrate behind Tables I and VI) ---

type (
	// Tensor is a dense float64 tensor (row-major).
	Tensor = tensor.Tensor
	// Classifier is a trainable layer stack.
	Classifier = train.Network
	// Trainer runs per-sample SGD with device-noise injection.
	Trainer = train.Trainer
	// Dataset is a labeled image collection.
	Dataset = data.Dataset
	// DataConfig controls synthetic dataset generation.
	DataConfig = data.Config
	// NoiseModel is the zero-centered device nonideality model.
	NoiseModel = rram.NoiseModel
)

// Noise injection targets for Trainer.
const (
	NoiseNone        = train.NoiseNone
	NoiseWeights     = train.NoiseWeights
	NoiseActivations = train.NoiseActivations
)

// NewTensor returns a zero tensor with the given dimensions.
func NewTensor(dims ...int) *Tensor { return tensor.New(dims...) }

// RandnTensor returns a tensor of N(0, stddev²) entries from a
// deterministic seed.
func RandnTensor(seed int64, stddev float64, dims ...int) *Tensor {
	return tensor.Randn(rand.New(rand.NewSource(seed)), stddev, dims...)
}

// NewNoiseModel returns a device nonideality model of relative strength
// sigma.
func NewNoiseModel(sigma float64, seed int64) *NoiseModel {
	return rram.NewNoiseModel(sigma, seed)
}

// DefaultDataConfig returns the synthetic 10-class dataset configuration.
func DefaultDataConfig() DataConfig { return data.DefaultConfig() }

// SyntheticDataset generates the deterministic grating dataset.
func SyntheticDataset(cfg DataConfig) *Dataset { return data.Generate(cfg) }

// NewClassifier builds the compact CNN used by the accuracy experiments.
func NewClassifier(seed int64, inC, inH, inW, classes int) *Classifier {
	return train.SmallCNN(rand.New(rand.NewSource(seed)), inC, inH, inW, classes)
}

// ClassifierAccuracy evaluates top-1 accuracy (percent).
func ClassifierAccuracy(net *Classifier, ds *Dataset) float64 {
	return train.Accuracy(net, ds)
}

// Placement is the §IV.C inter-layer mapping: layers sequentially
// assigned to macros, with fragmentation and time-multiplex accounting.
type Placement = place.Placement

// PlaceNetwork maps a network's compute layers onto an INCA configuration.
func PlaceNetwork(cfg Config, net *Network) Placement {
	return core.New(cfg).Placement(net)
}

// LoadConfig reads and validates an accelerator configuration from a JSON
// file (see Config.Save for the writer).
func LoadConfig(path string) (Config, error) { return arch.Load(path) }

// Timeline renders an ASCII Gantt chart of the report's layer schedule:
// the WS baseline pipelines images through layers in inference and
// serializes them in training, while INCA executes each layer once for
// the whole batch. items bounds how many images are drawn (legibility);
// width is the chart width in characters.
func Timeline(rep *Report, items, width int) string {
	stages := make([]sched.Stage, 0, len(rep.Layers))
	for _, lr := range rep.Layers {
		perImage := lr.Result.Latency
		if rep.Batch > 0 {
			perImage /= float64(rep.Batch)
		}
		stages = append(stages, sched.Stage{Name: lr.Layer.Name, Latency: perImage})
	}
	if items < 1 {
		items = 1
	}
	var entries []sched.Entry
	switch {
	case rep.Arch == "INCA":
		// Batch-parallel: one pass of the full-batch layer latencies.
		full := make([]sched.Stage, len(rep.Layers))
		for i, lr := range rep.Layers {
			full[i] = sched.Stage{Name: lr.Layer.Name, Latency: lr.Result.Latency}
		}
		entries = sched.BatchParallel(full)
	case rep.Phase == Training:
		entries = sched.Serial(stages, items)
	default:
		entries = sched.LayerPipeline(stages, items)
	}
	return sched.Gantt(entries, width)
}

// --- In-situ execution (whole networks on the array models) ---

type (
	// InSituMachine executes a Classifier end-to-end on the RRAM array
	// models: direct convolution on 2T1R planes, folded FC reads, digital
	// pooling/activation, and the §IV.C backward pass in which errors
	// overwrite the activation cells.
	InSituMachine = insitu.Machine
	// InSituOptions configures quantization, ADC resolution, device noise
	// and wear tracking for in-situ execution.
	InSituOptions = insitu.Options
)

// NewInSitu builds an in-situ execution machine.
func NewInSitu(opt InSituOptions) *InSituMachine { return insitu.New(opt) }

// --- Endurance analysis (§VI future work) ---

// EnduranceProfile is one dataflow's device-wear analysis.
type EnduranceProfile = endure.Profile

// AnalyzeEndurance evaluates the write-pressure lifetime of a design
// ("INCA" or anything else for WS) in a phase, on the given device, using
// a simulated batch latency.
func AnalyzeEndurance(archName string, phase Phase, dev DeviceSpec, batchLatency float64) EnduranceProfile {
	return endure.Analyze(archName, phase, dev, nil, batchLatency)
}

// DeviceSpec is a cell-technology description (Table II circuit block).
type DeviceSpec = rram.Device

// DeviceCandidates returns the §VI device technologies: RRAM, PCM, FeFET,
// and SRAM.
func DeviceCandidates() []DeviceSpec { return endure.Candidates() }

// --- Functional array execution (real numbers through the RRAM models) ---

// INCAArrayOptions configures functional IS execution (noise lands on
// stored activations; Quantize is the per-window ADC).
type INCAArrayOptions = core.FuncOptions

// WSArrayOptions configures functional WS execution (noise lands on
// programmed weights; Quantize is the per-column ADC).
type WSArrayOptions = baseline.FuncOptions

// INCAFunctionalConv executes a batched convolution on 2T1R 3D stacks
// exactly as the INCA hardware does, returning one output per image.
func INCAFunctionalConv(batch []*Tensor, w *Tensor, opt INCAArrayOptions) []*Tensor {
	outs, _ := core.FunctionalConv2D(batch, w, opt)
	return outs
}

// WSFunctionalConv executes a convolution on an unrolled WS crossbar
// (ISAAC-style).
func WSFunctionalConv(x, w *Tensor, opt WSArrayOptions) *Tensor {
	out, _ := baseline.FunctionalConv2D(x, w, opt)
	return out
}
