// Package inca is the public API of the INCA reproduction: an
// input-stationary (IS) RRAM crossbar accelerator simulator with its
// weight-stationary (WS) baseline, GPU reference model, DNN model zoo,
// and the accuracy experiments of the paper
//
//	"INCA: Input-stationary Dataflow at Outside-the-box Thinking about
//	 Deep Learning Accelerators", Kim, Li & Li, HPCA 2023.
//
// Quickstart (v3 API — dataflow registry, context-aware):
//
//	sim, err := inca.NewMachine("is", inca.Config{})
//	net, _ := inca.Model("ResNet18")
//	rep, err := sim.Simulate(ctx, net, inca.Inference)
//	fmt.Println(rep)
//
// Compare against the WS baseline:
//
//	base, _ := inca.NewMachine("ws", inca.Config{})
//	baseRep, _ := base.Simulate(ctx, net, inca.Inference)
//	cmp := inca.Compare(rep, baseRep)
//	fmt.Printf("%.1fx energy, %.1fx speed\n", cmp.EnergyRatio, cmp.Speedup)
//
// Machines are constructed through the pluggable dataflow registry —
// input-stationary ("is"), weight-stationary ("ws"), output-stationary
// ("os"), and the GPU roofline ("gpu") are peers; Dataflows() lists
// them. TuneSearch runs the mapping auto-tuner over the registry and
// returns per-network Pareto frontiers (energy × latency × area).
package inca

import (
	"context"
	"io"
	"math/rand"
	"net/http"

	"github.com/inca-arch/inca/internal/access"
	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/baseline"
	"github.com/inca-arch/inca/internal/client"
	"github.com/inca-arch/inca/internal/core"
	"github.com/inca-arch/inca/internal/data"
	"github.com/inca-arch/inca/internal/dataflow"
	"github.com/inca-arch/inca/internal/endure"
	"github.com/inca-arch/inca/internal/fault"
	"github.com/inca-arch/inca/internal/gpu"
	"github.com/inca-arch/inca/internal/insitu"
	"github.com/inca-arch/inca/internal/job"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/obs/cost"
	"github.com/inca-arch/inca/internal/place"
	"github.com/inca-arch/inca/internal/rram"
	"github.com/inca-arch/inca/internal/sched"
	"github.com/inca-arch/inca/internal/serve"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/store"
	"github.com/inca-arch/inca/internal/sweep"
	"github.com/inca-arch/inca/internal/tensor"
	"github.com/inca-arch/inca/internal/train"
	"github.com/inca-arch/inca/internal/tune"
)

// Phase selects inference or training simulation.
type Phase = sim.Phase

// Simulation phases.
const (
	Inference = sim.Inference
	Training  = sim.Training
)

// Config is a full accelerator configuration (paper Table II).
type Config = arch.Config

// DefaultINCA returns the paper's INCA configuration: 16×16×64 3D 2T1R
// arrays, 4-bit ADCs shared 16-ways, 64 KB buffers, HBM2, batch 64.
func DefaultINCA() Config { return arch.INCA() }

// DefaultBaseline returns the paper's 2D WS baseline: 128×128 crossbars,
// 8-bit ADCs, the same memory system.
func DefaultBaseline() Config { return arch.Baseline() }

// DefaultOutStationary returns the output-stationary comparison point:
// iso-capacity with the WS baseline but operated MAC-DO-style, with
// in-array accumulators and both operands streaming.
func DefaultOutStationary() Config { return arch.OutStationary() }

// Network is a shape-level DNN description.
type Network = nn.Network

// Report is a simulated execution result.
type Report = sim.Report

// Area is a Table V-style area breakdown in mm².
type Area = metrics.Area

// Model returns a zoo network by name: VGG16, VGG19, ResNet18, ResNet50,
// MobileNetV2, MNasNet, VGG16-CIFAR, ResNet18-CIFAR, LeNet5.
func Model(name string) (*Network, error) { return nn.ByName(name) }

// Models returns the six ImageNet networks of the paper's evaluation.
func Models() []*Network { return nn.PaperModels() }

// Sentinel errors of the v2 API. Test with errors.Is.
var (
	// ErrNilNetwork reports a nil network passed to Simulate.
	ErrNilNetwork = sim.ErrNilNetwork
	// ErrEmptyNetwork reports a network with no layers.
	ErrEmptyNetwork = sim.ErrEmptyNetwork
	// ErrEmptyReport reports a nil or layer-less report where per-layer
	// data is required (Timeline).
	ErrEmptyReport = sim.ErrEmptyReport
	// ErrZeroBatch reports a report whose batch size is not positive, so
	// per-image quantities are undefined.
	ErrZeroBatch = sim.ErrZeroBatch
	// ErrUnknownDataflow reports a NewMachine dataflow name no backend
	// registered (see Dataflows for the live list).
	ErrUnknownDataflow = dataflow.ErrUnknownDataflow
	// ErrUnsupportedPhase reports a simulation phase outside a
	// dataflow's capabilities (e.g. training on the output-stationary
	// backend).
	ErrUnsupportedPhase = dataflow.ErrUnsupportedPhase
)

// Simulator is the v2 simulation interface: it propagates context
// cancellation/deadlines and reports invalid input (nil networks,
// unknown phases) as errors instead of panicking. Implementations are
// safe for concurrent use; the sweep engine drives one from many
// goroutines.
type Simulator interface {
	Simulate(ctx context.Context, net *Network, phase Phase) (*Report, error)
}

// DataflowInfo describes one registered dataflow backend: its ID (the
// NewMachine name), display name, supported phases, and whether its
// configuration is tunable.
type DataflowInfo = dataflow.Capabilities

// Mapping is one point in a dataflow's mapping space: crossbar tile
// dimensions, 3D plane depth, and the loop order the backend applies.
// The zero Mapping is the backend's default configuration.
type Mapping = dataflow.Mapping

// Dataflows lists every registered dataflow backend, sorted by ID.
// The IDs are the names NewMachine accepts: "is" (input-stationary
// INCA), "ws" (weight-stationary baseline), "os" (output-stationary),
// "gpu" (Titan RTX roofline).
func Dataflows() []DataflowInfo {
	all := dataflow.All()
	infos := make([]DataflowInfo, len(all))
	for i, d := range all {
		infos[i] = d.Capabilities()
	}
	return infos
}

// MachineOption configures NewMachine.
type MachineOption func(*machineOptions)

type machineOptions struct {
	batch   int
	mapping Mapping
}

// WithBatch overrides the configuration's batch size.
func WithBatch(n int) MachineOption { return func(o *machineOptions) { o.batch = n } }

// WithMapping applies a mapping point from the dataflow's search space
// (see TuneSearch) to the base configuration before construction.
func WithMapping(m Mapping) MachineOption { return func(o *machineOptions) { o.mapping = m } }

// NewMachine builds a simulator for a named dataflow backend from the
// registry. Passing the zero Config uses the dataflow's default
// configuration (the paper's design point); a non-zero Config is
// validated by the backend. Names are matched case-insensitively and
// legacy architecture names ("INCA", "WS-Baseline", "TitanRTX")
// normalize to their dataflow IDs. It returns ErrUnknownDataflow for an
// unregistered name.
//
//	m, err := inca.NewMachine("os", inca.Config{}, inca.WithBatch(8))
func NewMachine(dataflowID string, cfg Config, opts ...MachineOption) (Simulator, error) {
	d, err := dataflow.Get(dataflowID)
	if err != nil {
		return nil, err
	}
	var o machineOptions
	for _, opt := range opts {
		opt(&o)
	}
	if cfg == (Config{}) {
		cfg = d.DefaultConfig()
	}
	if !o.mapping.IsZero() {
		cfg = d.Apply(cfg, o.mapping)
	}
	if o.batch > 0 {
		cfg.BatchSize = o.batch
	}
	return d.New(cfg)
}

// New builds the simulator for a configuration, selecting the
// input-stationary model or the WS baseline by its Dataflow field. It
// returns an error for an invalid configuration (where the deprecated
// constructors panic).
//
// Deprecated: use NewMachine(dataflow, cfg), which selects any
// registered backend by name instead of only IS/WS by enum.
func New(cfg Config) (Simulator, error) {
	d, err := dataflow.Get(dataflow.FromConfig(cfg))
	if err != nil {
		return nil, err
	}
	return d.New(cfg)
}

// NewGPUSimulator builds the Titan RTX roofline model of Fig. 15 behind
// the v2 interface.
//
// Deprecated: use NewMachine("gpu", inca.Config{}).
func NewGPUSimulator() Simulator {
	s, err := NewMachine("gpu", Config{})
	if err != nil {
		panic(err) // unreachable: the gpu backend registers at init
	}
	return s
}

// Machine is the legacy context-free simulation interface.
//
// Deprecated: use Simulator (via New / NewGPUSimulator), which accepts a
// context and returns errors. Machine remains as a thin adapter so
// existing callers compile; its Simulate panics on invalid
// configurations and cannot be cancelled.
type Machine interface {
	Simulate(net *Network, phase Phase) *Report
}

// NewINCA builds the input-stationary accelerator simulator.
//
// Deprecated: use NewMachine("is", cfg), which validates cfg instead of
// panicking and returns the context-aware Simulator.
func NewINCA(cfg Config) Machine { return core.New(cfg) }

// NewBaseline builds the weight-stationary baseline simulator.
//
// Deprecated: use NewMachine("ws", cfg), which validates cfg instead of
// panicking and returns the context-aware Simulator.
func NewBaseline(cfg Config) Machine { return baseline.New(cfg) }

// NewGPU builds the Titan RTX roofline model of Fig. 15.
//
// Deprecated: use NewMachine("gpu", inca.Config{}), which returns the
// context-aware Simulator.
func NewGPU() Machine { return gpu.New(gpu.TitanRTX()) }

// GPUArea returns the GPU die area (mm²) for iso-area comparisons.
func GPUArea() float64 { return gpu.TitanRTX().AreaMM2 }

// Comparison summarizes an A-versus-B report pair. EnergyRatio and
// Speedup are B's cost over A's (>1 means A wins); PerfPerWatt is their
// product — the throughput-per-watt improvement the paper's Fig. 11
// reports as "energy efficiency".
type Comparison struct {
	EnergyRatio float64
	Speedup     float64
	PerfPerWatt float64
}

// Compare evaluates a against the reference b.
func Compare(a, b *Report) Comparison {
	e := a.Total.EnergyEfficiencyVs(b.Total)
	s := a.Total.SpeedupVs(b.Total)
	return Comparison{EnergyRatio: e, Speedup: s, PerfPerWatt: e * s}
}

// AccessCounts returns the Table III buffer-access estimates (Eq. 5/6)
// for a network at the given precision and bus width.
type AccessCounts = access.NetworkAccesses

// CountAccesses evaluates both dataflows' analytical access counts.
func CountAccesses(net *Network, precBits, busBits int64) AccessCounts {
	return access.CountNetwork(net, precBits, busBits)
}

// UnrollBlowup quantifies Fig. 7b's unrolled-versus-direct RRAM demand.
type UnrollBlowup = access.UnrollBlowup

// CountUnroll evaluates the Fig. 7b comparison for a network.
func CountUnroll(net *Network) UnrollBlowup { return access.CountUnroll(net) }

// Footprint is the Table IV minimum memory requirement (MB) for
// supporting both inference and training. In WS, RRAM must hold the
// original weights, their transposed copies, and the activations, while
// buffers stage the activations; in IS, RRAM holds only the activations
// (errors overwrite them) and buffers hold the weights.
type Footprint struct {
	Network                      string
	BaselineRRAM, BaselineBuffer float64
	INCARRAM, INCABuffer         float64
}

// MemoryFootprint evaluates Table IV's formulas for a network at 8-bit
// precision. It returns ErrNilNetwork for a nil network and
// ErrEmptyNetwork for one with no layers (instead of an all-zero
// Footprint).
func MemoryFootprint(net *Network) (Footprint, error) {
	if net == nil {
		return Footprint{}, ErrNilNetwork
	}
	if len(net.Layers) == 0 {
		return Footprint{}, ErrEmptyNetwork
	}
	const mb = 1024 * 1024
	w := float64(net.TotalWeights()) / mb
	a := float64(net.TotalActivations()) / mb
	return Footprint{
		Network:        net.Name,
		BaselineRRAM:   2*w + a,
		BaselineBuffer: a,
		INCARRAM:       a,
		INCABuffer:     w,
	}, nil
}

// Accuracy experiment re-exports (Tables I and VI).
type (
	// ExperimentConfig sizes the accuracy experiments.
	ExperimentConfig = train.ExperimentConfig
	// NoiseAccuracyRow is one Table VI row.
	NoiseAccuracyRow = train.NoiseAccuracyRow
	// BitDepthRow is one Table I column pair.
	BitDepthRow = train.BitDepthRow
)

// DefaultExperimentConfig mirrors the paper's accuracy protocol at the
// synthetic dataset's scale.
func DefaultExperimentConfig() ExperimentConfig { return train.DefaultExperimentConfig() }

// NoiseAccuracy reproduces Table VI: training accuracy under device noise
// of strength σ applied to weights (WS exposure) versus activations (IS
// exposure).
func NoiseAccuracy(cfg ExperimentConfig, sigmas []float64) []NoiseAccuracyRow {
	return train.NoiseAccuracyTable(cfg, sigmas)
}

// BitDepthAccuracy reproduces Table I: post-training quantization drops
// with one operand reduced below 8 bits.
func BitDepthAccuracy(cfg ExperimentConfig, bits []int) []BitDepthRow {
	return train.BitDepthTable(cfg, bits)
}

// --- Training engine (the software substrate behind Tables I and VI) ---

type (
	// Tensor is a dense float64 tensor (row-major).
	Tensor = tensor.Tensor
	// Classifier is a trainable layer stack.
	Classifier = train.Network
	// Trainer runs per-sample SGD with device-noise injection.
	Trainer = train.Trainer
	// Dataset is a labeled image collection.
	Dataset = data.Dataset
	// DataConfig controls synthetic dataset generation.
	DataConfig = data.Config
	// NoiseModel is the zero-centered device nonideality model.
	NoiseModel = rram.NoiseModel
)

// Noise injection targets for Trainer.
const (
	NoiseNone        = train.NoiseNone
	NoiseWeights     = train.NoiseWeights
	NoiseActivations = train.NoiseActivations
)

// NewTensor returns a zero tensor with the given dimensions.
func NewTensor(dims ...int) *Tensor { return tensor.New(dims...) }

// RandnTensor returns a tensor of N(0, stddev²) entries from a
// deterministic seed.
func RandnTensor(seed int64, stddev float64, dims ...int) *Tensor {
	return tensor.Randn(rand.New(rand.NewSource(seed)), stddev, dims...)
}

// SetKernelParallelism caps the process-wide worker budget shared by all
// tensor kernels (convolutions, matrix multiply, backward passes) and
// batch evaluation, returning the previous setting (0 when the budget was
// tracking GOMAXPROCS). n <= 0 restores GOMAXPROCS tracking. Results are
// byte-identical at every budget; see SweepOptions.KernelParallelism for
// combining kernel parallelism with the sweep engine's worker pool.
func SetKernelParallelism(n int) int { return tensor.SetParallelism(n) }

// KernelParallelism reports the current tensor-kernel worker budget.
func KernelParallelism() int { return tensor.Parallelism() }

// NewNoiseModel returns a device nonideality model of relative strength
// sigma.
//
// Deprecated: use BuildNoiseModel(WithNoise(sigma), WithSeed(seed)) —
// the functional-option constructor reads at call sites and gains knobs
// without signature breaks.
func NewNoiseModel(sigma float64, seed int64) *NoiseModel {
	return rram.NewNoiseModel(sigma, seed)
}

// Option configures the functional-option constructors BuildClassifier
// and BuildNoiseModel. Options irrelevant to a constructor are ignored,
// so one option list can configure a whole experiment.
type Option func(*buildOptions)

type buildOptions struct {
	seed          int64
	sigma         float64
	inC, inH, inW int
	classes       int
}

// defaultBuildOptions mirrors DefaultDataConfig(): grayscale 16×16
// inputs, 10 classes, and the practically adopted 1% noise strength.
func defaultBuildOptions() buildOptions {
	d := data.DefaultConfig()
	return buildOptions{seed: 1, sigma: 0.01, inC: 1, inH: d.H, inW: d.W, classes: d.Classes}
}

// WithSeed sets the deterministic RNG seed (default 1).
func WithSeed(seed int64) Option { return func(o *buildOptions) { o.seed = seed } }

// WithNoise sets the relative device-noise strength σ (default 0.01).
func WithNoise(sigma float64) Option { return func(o *buildOptions) { o.sigma = sigma } }

// WithInputShape sets the classifier's input dimensions (default the
// synthetic dataset's 1×16×16).
func WithInputShape(c, h, w int) Option {
	return func(o *buildOptions) { o.inC, o.inH, o.inW = c, h, w }
}

// WithClasses sets the classifier's output class count (default 10).
func WithClasses(n int) Option { return func(o *buildOptions) { o.classes = n } }

// BuildClassifier constructs the compact experiment CNN from functional
// options; it replaces the positional NewClassifier. Unspecified options
// match DefaultDataConfig(), so BuildClassifier() pairs with
// SyntheticDataset(DefaultDataConfig()).
func BuildClassifier(opts ...Option) *Classifier {
	o := defaultBuildOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return train.SmallCNN(rand.New(rand.NewSource(o.seed)), o.inC, o.inH, o.inW, o.classes)
}

// BuildNoiseModel constructs a device nonideality model from functional
// options (WithNoise for σ, WithSeed for the RNG stream); it replaces
// the positional NewNoiseModel.
func BuildNoiseModel(opts ...Option) *NoiseModel {
	o := defaultBuildOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return rram.NewNoiseModel(o.sigma, o.seed)
}

// DefaultDataConfig returns the synthetic 10-class dataset configuration.
func DefaultDataConfig() DataConfig { return data.DefaultConfig() }

// SyntheticDataset generates the deterministic grating dataset.
func SyntheticDataset(cfg DataConfig) *Dataset { return data.Generate(cfg) }

// NewClassifier builds the compact CNN used by the accuracy experiments.
//
// Deprecated: use BuildClassifier(WithSeed(seed), WithInputShape(inC,
// inH, inW), WithClasses(classes)) — the functional-option constructor
// names each argument at the call site.
func NewClassifier(seed int64, inC, inH, inW, classes int) *Classifier {
	return train.SmallCNN(rand.New(rand.NewSource(seed)), inC, inH, inW, classes)
}

// ClassifierAccuracy evaluates top-1 accuracy (percent).
func ClassifierAccuracy(net *Classifier, ds *Dataset) float64 {
	return train.Accuracy(net, ds)
}

// Placement is the §IV.C inter-layer mapping: layers sequentially
// assigned to macros, with fragmentation and time-multiplex accounting.
type Placement = place.Placement

// PlaceNetwork maps a network's compute layers onto an INCA configuration.
func PlaceNetwork(cfg Config, net *Network) Placement {
	return core.New(cfg).Placement(net)
}

// LoadConfig reads and validates an accelerator configuration from a JSON
// file (see Config.Save for the writer).
func LoadConfig(path string) (Config, error) { return arch.Load(path) }

// Timeline renders an ASCII Gantt chart of the report's layer schedule:
// the WS baseline pipelines images through layers in inference and
// serializes them in training, while INCA executes each layer once for
// the whole batch. items bounds how many images are drawn (legibility);
// width is the chart width in characters. It returns ErrEmptyReport for
// a nil or layer-less report and ErrZeroBatch when the report's batch
// size is not positive (the per-image stage latencies are undefined).
func Timeline(rep *Report, items, width int) (string, error) {
	if rep == nil || len(rep.Layers) == 0 {
		return "", ErrEmptyReport
	}
	if rep.Batch <= 0 {
		return "", ErrZeroBatch
	}
	stages := make([]sched.Stage, 0, len(rep.Layers))
	for _, lr := range rep.Layers {
		perImage := lr.Result.Latency / float64(rep.Batch)
		stages = append(stages, sched.Stage{Name: lr.Layer.Name, Latency: perImage})
	}
	if items < 1 {
		items = 1
	}
	var entries []sched.Entry
	switch {
	case rep.Arch == "INCA":
		// Batch-parallel: one pass of the full-batch layer latencies.
		full := make([]sched.Stage, len(rep.Layers))
		for i, lr := range rep.Layers {
			full[i] = sched.Stage{Name: lr.Layer.Name, Latency: lr.Result.Latency}
		}
		entries = sched.BatchParallel(full)
	case rep.Phase == Training:
		entries = sched.Serial(stages, items)
	default:
		entries = sched.LayerPipeline(stages, items)
	}
	return sched.Gantt(entries, width), nil
}

// --- In-situ execution (whole networks on the array models) ---

type (
	// InSituMachine executes a Classifier end-to-end on the RRAM array
	// models: direct convolution on 2T1R planes, folded FC reads, digital
	// pooling/activation, and the §IV.C backward pass in which errors
	// overwrite the activation cells.
	InSituMachine = insitu.Machine
	// InSituOptions configures quantization, ADC resolution, device noise
	// and wear tracking for in-situ execution.
	InSituOptions = insitu.Options
)

// NewInSitu builds an in-situ execution machine.
func NewInSitu(opt InSituOptions) *InSituMachine { return insitu.New(opt) }

// --- Endurance analysis (§VI future work) ---

// EnduranceProfile is one dataflow's device-wear analysis.
type EnduranceProfile = endure.Profile

// AnalyzeEndurance evaluates the write-pressure lifetime of a design
// ("INCA" or anything else for WS) in a phase, on the given device, using
// a simulated batch latency.
func AnalyzeEndurance(archName string, phase Phase, dev DeviceSpec, batchLatency float64) EnduranceProfile {
	return endure.Analyze(archName, phase, dev, nil, batchLatency)
}

// DeviceSpec is a cell-technology description (Table II circuit block).
type DeviceSpec = rram.Device

// DeviceCandidates returns the §VI device technologies: RRAM, PCM, FeFET,
// and SRAM.
func DeviceCandidates() []DeviceSpec { return endure.Candidates() }

// --- Functional array execution (real numbers through the RRAM models) ---

// INCAArrayOptions configures functional IS execution (noise lands on
// stored activations; Quantize is the per-window ADC).
type INCAArrayOptions = core.FuncOptions

// WSArrayOptions configures functional WS execution (noise lands on
// programmed weights; Quantize is the per-column ADC).
type WSArrayOptions = baseline.FuncOptions

// INCAFunctionalConv executes a batched convolution on 2T1R 3D stacks
// exactly as the INCA hardware does, returning one output per image.
func INCAFunctionalConv(batch []*Tensor, w *Tensor, opt INCAArrayOptions) []*Tensor {
	outs, _ := core.FunctionalConv2D(batch, w, opt)
	return outs
}

// WSFunctionalConv executes a convolution on an unrolled WS crossbar
// (ISAAC-style).
func WSFunctionalConv(x, w *Tensor, opt WSArrayOptions) *Tensor {
	out, _ := baseline.FunctionalConv2D(x, w, opt)
	return out
}

// --- Sweep engine (parallel cross-product evaluation) ---

type (
	// SweepPlan declares a sweep as architectures × networks × phases ×
	// configuration overrides.
	SweepPlan = sweep.Plan
	// SweepArch is one architecture axis entry of a plan.
	SweepArch = sweep.Arch
	// SweepOverride is one named configuration transform of a plan.
	SweepOverride = sweep.Override
	// SweepOptions tunes a run: worker-pool size and a shareable cache.
	SweepOptions = sweep.Options
	// SweepResult is one completed (or failed) cell evaluation.
	SweepResult = sweep.Result
	// SweepCache memoizes cell reports with singleflight deduplication.
	SweepCache = sweep.Cache
)

// SweepINCA returns the paper's INCA accelerator as a sweep axis.
func SweepINCA() SweepArch { return sweep.INCAArch() }

// SweepBaseline returns the 2D WS baseline as a sweep axis.
func SweepBaseline() SweepArch { return sweep.BaselineArch() }

// SweepGPU returns the Titan RTX roofline model as a sweep axis.
func SweepGPU() SweepArch { return sweep.GPUArch() }

// SweepOutStat returns the output-stationary comparison point as a
// sweep axis.
func SweepOutStat() SweepArch { return sweep.OutStatArch() }

// SweepDataflow returns a registered dataflow's default configuration as
// a sweep axis, or ErrUnknownDataflow for an unregistered name.
func SweepDataflow(id string) (SweepArch, error) { return sweep.DataflowArch(id) }

// SweepConfig wraps an explicit configuration as a sweep axis, selecting
// the IS or WS model by its Dataflow field.
func SweepConfig(cfg Config) SweepArch { return sweep.ConfigArch(cfg) }

// PaperSweep returns the full Figs. 11–16 evaluation cross product:
// {INCA, WS baseline, GPU} × the six ImageNet CNNs × both phases.
func PaperSweep() SweepPlan { return sweep.PaperPlan() }

// SweepCacheOption configures NewSweepCache.
type SweepCacheOption func(*SweepCache)

// NewSweepCache returns an empty memoization cache to share across runs.
func NewSweepCache(opts ...SweepCacheOption) *SweepCache {
	c := sweep.NewCache()
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// ErrSweepEvalPanic reports a sweep cell whose evaluation panicked: the
// panic is recovered inside the cache, every coalesced waiter unblocks
// with this error, and the cell key stays retriable. Test with
// errors.Is on a SweepResult's Err.
var ErrSweepEvalPanic = sweep.ErrEvalPanic

// --- Persistent result store (warm starts across restarts) ---

type (
	// ResultStore is the disk-backed, content-addressed result store:
	// append-only segment files of report JSON keyed by the SHA-256 of
	// the canonical cell key, with an index rebuilt by scanning at open
	// (a torn tail record is truncated, not fatal), TTL + size-capped
	// eviction via segment compaction, and corpus export/import.
	// Attached to a SweepCache (WithResultStore) or the HTTP service
	// (ServiceOptions.Store) it makes restarts warm: previously
	// simulated cells load from disk instead of recomputing.
	ResultStore = store.Store
	// ResultStoreOptions bounds OpenResultStore; the zero value is
	// usable (256 MiB cap, no TTL).
	ResultStoreOptions = store.Options
	// ResultStoreStats is the store's counter snapshot (also served at
	// GET /v1/store/stats and inside /metrics).
	ResultStoreStats = store.Stats
	// ResultStoreImport summarizes one corpus import: records added,
	// skipped (key already present), and rejected (undecodable or
	// content-address mismatch).
	ResultStoreImport = store.ImportResult
)

// OpenResultStore opens (or creates) a persistent result store rooted
// at dir, rebuilding its index by scanning the segment files. A
// truncated or torn tail record — a crash mid-append — is discarded and
// the surviving prefix serves normally.
func OpenResultStore(dir string, opt ResultStoreOptions) (*ResultStore, error) {
	return store.Open(dir, opt)
}

// WithResultStore attaches a persistent store as the cache's second
// tier: memory misses consult the store before simulating, and fresh
// results are written through, so the cache warm-starts from disk on
// the next process.
//
//	st, err := inca.OpenResultStore(dir, inca.ResultStoreOptions{})
//	cache := inca.NewSweepCache(inca.WithResultStore(st))
func WithResultStore(st *ResultStore) SweepCacheOption {
	return func(c *SweepCache) { c.SetTier(st) }
}

// RunSweep evaluates every cell of the plan on a bounded worker pool and
// returns the results in deterministic plan order. Cancelling ctx stops
// new evaluations; unexecuted cells carry the context's error.
func RunSweep(ctx context.Context, p SweepPlan, opt SweepOptions) ([]SweepResult, error) {
	return sweep.Run(ctx, p, opt)
}

// StreamSweep launches the sweep and delivers results in completion
// order; the channel closes once every cell has reported.
func StreamSweep(ctx context.Context, p SweepPlan, opt SweepOptions) (<-chan SweepResult, error) {
	return sweep.Stream(ctx, p, opt)
}

// --- Mapping auto-tuner (per-network Pareto frontiers) ---

type (
	// TuneOptions bounds a TuneSearch: which dataflows and phases to
	// search, the per-dataflow candidate cap, sweep worker count, a
	// shareable cache, and a retry policy for transient failures.
	TuneOptions = tune.Options
	// TuneCandidate is one evaluated (dataflow, mapping) point with its
	// energy/latency/area objectives.
	TuneCandidate = tune.Candidate
	// TuneFrontier is one (network, phase) Pareto frontier: the
	// non-dominated candidates sorted by ascending energy.
	TuneFrontier = tune.Frontier
)

// TuneSearch enumerates every registered dataflow's legal mapping
// points for the network (crossbar tile shapes, 3D plane depths, loop
// orders, bounded by multiplex and buffer capacity), evaluates them on
// the sweep engine, and returns one energy × latency × area Pareto
// frontier per requested phase. The zero TuneOptions searches every
// dataflow at inference.
func TuneSearch(ctx context.Context, net *Network, opt TuneOptions) ([]TuneFrontier, error) {
	return tune.Search(ctx, net, opt)
}

// --- HTTP simulation service (cmd/inca-serve's substrate) ---

type (
	// Service is the production HTTP simulation service: a stdlib-only
	// JSON API over the v2 facade (POST /v1/simulate, POST /v1/sweep,
	// GET /v1/models, GET /v1/experiments/{id}, /healthz, /metrics) with
	// bounded admission, per-request deadlines, worker-budget coupling,
	// and graceful shutdown. See internal/serve for the endpoint and
	// production-behavior details.
	Service = serve.Server
	// ServiceOptions configures NewService; the zero value is
	// production-usable (see serve.Options for every default).
	ServiceOptions = serve.Options
	// ServiceSimulateRequest is the POST /v1/simulate body.
	ServiceSimulateRequest = serve.SimulateRequest
	// ServiceSweepRequest is the POST /v1/sweep body.
	ServiceSweepRequest = serve.SweepRequest
	// ServiceSweepResponse is the POST /v1/sweep payload.
	ServiceSweepResponse = serve.SweepResponse
	// ServiceModelInfo is one GET /v1/models entry.
	ServiceModelInfo = serve.ModelInfo
	// ServiceMetrics is the GET /metrics counter snapshot.
	ServiceMetrics = serve.Snapshot
	// ServiceSLOOptions configures burn-rate SLO tracking
	// (ServiceOptions.SLO); the zero value disables it.
	ServiceSLOOptions = serve.SLOOptions
	// ServiceSLOStats is the tracker's snapshot: per-window burn rates
	// and the ok/degraded classification, as served in /metrics and
	// /healthz/ready.
	ServiceSLOStats = serve.SLOStats
	// ServiceUsageResponse is the GET /v1/usage payload: request/job
	// totals plus the per-model×dataflow cost breakdown.
	ServiceUsageResponse = serve.UsageResponse
	// ServiceTraceResponse is the GET /v1/trace/{id} payload: the
	// federated span set and its rendered tree.
	ServiceTraceResponse = serve.TraceResponse
	// ServiceTraceIndex is the GET /v1/trace payload: one summary row
	// per retained trace, most recently active first.
	ServiceTraceIndex = serve.TraceIndexResponse
	// CostSummary is one request's (or job's) cost-attribution rollup:
	// wall/CPU time, cell and cache counters, kernel deltas, and the
	// simulated energy/latency totals. Servers append it to responses on
	// the ?cost=1 opt-in.
	CostSummary = cost.Summary
)

// NewService builds the HTTP simulation service. Mount Handler on any
// http.Server, or let Service.Serve manage listening and graceful
// drain-on-cancel.
func NewService(opt ServiceOptions) *Service { return serve.New(opt) }

// NewServiceHandler is the one-line embedding path: the fully
// instrumented handler (request IDs, access logs, admission, metrics)
// with default options plus the given cache and logger taken from opt.
func NewServiceHandler(opt ServiceOptions) http.Handler { return serve.New(opt).Handler() }

// --- Durable asynchronous jobs (crash-safe sweeps) ---

type (
	// JobManager owns the durable asynchronous job subsystem: submitted
	// sweep specs execute on a bounded runner pool detached from the
	// submitting request, every state transition and progress step is
	// journaled (append-only, CRC-framed, torn tails truncated at open
	// like the result store's segments), and a manager reopened over the
	// same directory resumes every non-terminal job from the journal —
	// re-running only the cells the result store has not already
	// persisted, so the resumed result is byte-identical to an
	// uninterrupted run. Attach one via ServiceOptions.Jobs to serve the
	// /v1/jobs API.
	JobManager = job.Manager
	// JobManagerOptions bounds OpenJobManager; the zero value is usable
	// (2 runners, queue depth 64).
	JobManagerOptions = job.Options
	// JobSnapshot is one job's externally visible state — also the
	// GET /v1/jobs/{id} payload.
	JobSnapshot = job.Snapshot
	// JobState is a job's lifecycle state: queued → running →
	// succeeded | failed | cancelled.
	JobState = job.State
	// JobStats is the manager's counter snapshot, exported inside
	// /metrics and /healthz/ready.
	JobStats = job.Stats
)

// The job lifecycle states.
const (
	JobQueued    = job.StateQueued
	JobRunning   = job.StateRunning
	JobSucceeded = job.StateSucceeded
	JobFailed    = job.StateFailed
	JobCancelled = job.StateCancelled
)

// Job subsystem sentinels: ErrJobQueueFull answers a submission the
// bounded queue cannot hold (HTTP 503 with Retry-After); ErrUnknownJob
// answers lookups of IDs the manager never saw; ErrJobsDisabled
// answers facade job calls on a service built without a JobManager;
// ErrJobRunnerPanic is the terminal error of a job whose executor
// panicked — the runner pool recovers it and the job fails instead of
// taking the process down.
var (
	ErrJobQueueFull   = job.ErrQueueFull
	ErrUnknownJob     = job.ErrUnknownJob
	ErrJobsDisabled   = serve.ErrJobsDisabled
	ErrJobRunnerPanic = job.ErrRunnerPanic
)

// OpenJobManager opens (or creates) a job manager journaled under dir;
// an empty dir keeps jobs in memory only (no crash resume). Jobs found
// non-terminal in the journal — the process died or shut down while
// they were queued or running — are requeued the moment the manager is
// attached to a service.
func OpenJobManager(dir string, opt JobManagerOptions) (*JobManager, error) {
	return job.Open(dir, opt)
}

// SubmitJob submits a sweep spec as a durable asynchronous job on the
// service's manager — the in-process twin of POST /v1/jobs. Job IDs
// derive from the spec's content, so resubmitting an identical spec
// returns the existing job's snapshot instead of duplicating work.
func SubmitJob(s *Service, req ServiceSweepRequest) (JobSnapshot, error) {
	return s.SubmitJob(req)
}

// JobStatus reports one job's current snapshot.
func JobStatus(s *Service, id string) (JobSnapshot, error) {
	return s.JobStatus(id)
}

// --- Fault injection and retries (the robustness layer) ---

type (
	// FaultInjector is a deterministic seeded fault injector: rules keyed
	// by stable site names fire from per-site PRNG streams, so an injected
	// failure schedule reproduces exactly across runs and worker counts.
	// A nil *FaultInjector is inert, making injection free to thread
	// through production code paths.
	FaultInjector = fault.Injector
	// FaultRule arms one fault at a site pattern (trailing '*' matches a
	// prefix) with a probability, an optional trigger cap, and a payload
	// (error, panic, latency, or context cancellation).
	FaultRule = fault.Rule
	// FaultKind selects a rule's failure mode.
	FaultKind = fault.Kind
	// SweepRetryPolicy arms transparent per-cell retries in SweepOptions:
	// transient cell failures re-evaluate with capped exponential backoff
	// and seeded jitter before surfacing in a SweepResult.
	SweepRetryPolicy = sweep.RetryPolicy
	// StuckFault pins one crossbar cell at LRS (full conductance) or HRS
	// (zero) through reprogramming — the device-level failure model.
	StuckFault = rram.StuckFault
	// StuckFaultRow is one row of the stuck-at accuracy experiment:
	// training accuracy with a fraction of weight devices dead.
	StuckFaultRow = train.StuckFaultRow
	// Client is the retrying HTTP client for the simulation service: it
	// honors Retry-After, backs off with seeded jitter, respects context
	// deadlines, and never retries 4xx answers.
	Client = client.Client
	// ClientOptions tunes NewClient; the zero value is usable.
	ClientOptions = client.Options
	// APIError is a non-2xx answer from the service, carrying the status,
	// the server's message, and any Retry-After hint.
	APIError = client.APIError
)

// Failure modes a FaultRule can inject.
const (
	FaultError   = fault.KindError
	FaultPanic   = fault.KindPanic
	FaultLatency = fault.KindLatency
	FaultCancel  = fault.KindCancel
)

// Chaos-testing fault sites inside the HTTP service (armed via
// ServiceOptions.Inject; never enabled by default).
const (
	ChaosSiteRequest = serve.ChaosSiteRequest
	ChaosSiteExec    = serve.ChaosSiteExec
	ChaosSiteCancel  = serve.ChaosSiteCancel
	ChaosSiteJob     = serve.ChaosSiteJob
)

// ErrClientAttemptsExhausted reports a Client call that stayed retryable
// through every allowed attempt; it wraps the last failure.
var ErrClientAttemptsExhausted = client.ErrAttemptsExhausted

// NewFaultInjector returns an empty injector whose every probabilistic
// draw derives from seed. Arm sites with Add; wire it into
// SweepOptions.Inject or ServiceOptions.Inject.
func NewFaultInjector(seed int64) *FaultInjector { return fault.New(seed) }

// MarkTransient wraps err so IsTransient reports it retryable.
func MarkTransient(err error) error { return fault.MarkTransient(err) }

// IsTransient reports whether err is worth retrying: explicitly marked
// errors and 5xx APIErrors are; context errors and 4xx never are. The
// sweep engine and the HTTP client share this classification.
func IsTransient(err error) bool { return fault.IsTransient(err) }

// NewClient returns a retrying HTTP client for the service at baseURL.
func NewClient(baseURL string, opt ClientOptions) (*Client, error) {
	return client.New(baseURL, opt)
}

// StuckFaultAccuracy runs the device-failure accuracy experiment: for
// each rate, a deterministic injector flips that fraction of trained
// weight devices to stuck-at-LRS/HRS and the row reports the surviving
// test accuracy against the clean model.
func StuckFaultAccuracy(cfg ExperimentConfig, rates []float64) []StuckFaultRow {
	return train.StuckFaultTable(cfg, rates)
}

// --- Tracing and runtime telemetry (the observability layer) ---

type (
	// Tracer produces nested spans across the whole stack: the HTTP
	// service's per-request root, the sweep engine's per-cell and
	// per-attempt spans, and the simulator's per-layer leaves whose
	// attributes reconcile with the report's latency table. Spans land
	// in a bounded in-memory ring (queryable via TraceDump or the
	// service's GET /v1/trace/{id}) and any extra sinks.
	Tracer = obs.Tracer
	// TracerOption configures NewTracer.
	TracerOption = obs.TracerOption
	// TraceSpan is a live span; annotate with SetAttr/Count/Event and
	// finish with End or EndWith.
	TraceSpan = obs.Span
	// TraceSpanData is the immutable record of a completed span — what
	// sinks receive and TraceRing stores.
	TraceSpanData = obs.SpanData
	// TraceAttr is one key/value annotation on a span or event.
	TraceAttr = obs.Attr
	// TraceRing is the bounded in-memory span store backing trace
	// queries; oldest spans are evicted first.
	TraceRing = obs.Ring
	// TraceSink receives completed spans (the ring and the JSONL writer
	// are the built-ins; implement it for custom exporters).
	TraceSink = obs.Sink
	// KernelStats is the atomic counter block tracking tensor-kernel
	// invocations, chunking, and worker occupancy. Install with
	// InstallKernelStats (or tensor.SetStatsHook) and read with
	// Snapshot; /metrics exports it when a hook is installed.
	KernelStats = tensor.KernelStats
	// KernelStatsSnapshot is a point-in-time copy of a KernelStats.
	KernelStatsSnapshot = tensor.StatsSnapshot
)

// NewTracer builds a tracer. With no options, spans go to a
// default-capacity in-memory ring only.
func NewTracer(opts ...TracerOption) *Tracer { return obs.NewTracer(opts...) }

// WithTraceRing sets the tracer's in-memory ring capacity (spans);
// n <= 0 keeps the default.
func WithTraceRing(n int) TracerOption { return obs.WithRing(n) }

// WithTraceJSONL streams every completed span to w as one JSON object
// per line, in addition to the ring.
func WithTraceJSONL(w io.Writer) TracerOption { return obs.WithSink(obs.NewJSONLWriter(w)) }

// WithTraceSink attaches a custom span sink alongside the ring.
func WithTraceSink(s TraceSink) TracerOption { return obs.WithSink(s) }

// WithTracer starts a root span named name on t and returns a context
// carrying it: every facade call made with that context (Simulate,
// RunSweep, the service handlers' internals) nests its spans beneath
// the root. End the returned span to flush it to the tracer's sinks.
func WithTracer(ctx context.Context, t *Tracer, name string, attrs ...TraceAttr) (context.Context, *TraceSpan) {
	return t.Start(ctx, name, attrs...)
}

// TraceDump renders one trace from the tracer's ring as an indented
// span tree with durations, attributes, and counters — the quick
// human-readable view (the service's GET /v1/trace/{id}?format=text
// serves the same rendering).
func TraceDump(t *Tracer, traceID string) string {
	if t == nil || t.Ring() == nil {
		return ""
	}
	return obs.Dump(t.Ring(), traceID)
}

// InstallKernelStats installs a fresh process-wide kernel-stats
// collector and returns it; /metrics reports its counters. The hook
// costs one atomic load per kernel call — negligible against any real
// kernel.
func InstallKernelStats() *KernelStats {
	s := &KernelStats{}
	tensor.SetStatsHook(s)
	return s
}
