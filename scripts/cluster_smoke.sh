#!/bin/sh
# cluster_smoke.sh — end-to-end smoke test for the sharded sweep
# cluster, run by `make cluster-smoke` and CI. Boots three shard nodes,
# a coordinator scatter/gathering across them, and a plain single-node
# reference. Asserts: the coordinator's sweep CSV is byte-identical to
# the reference node's; after SIGKILLing one shard the next sweep still
# completes byte-identical (lost cells rehash onto survivors) and the
# coordinator's readiness degrades without going unready; and the
# coalescing counter family is exported. Exits nonzero on any mismatch.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pids=
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/inca-serve" ./cmd/inca-serve

# boot NAME [extra flags...]: start one node on an ephemeral port and
# wait for its boot handshake. The resolved base URL lands in $base.
boot() {
    name=$1
    shift
    "$tmp/inca-serve" -addr 127.0.0.1:0 -quiet "$@" \
        >"$tmp/$name.out" 2>"$tmp/$name.err" &
    eval "pid_$name=$!"
    pids="$pids $!"
    base=
    i=0
    while [ $i -lt 100 ]; do
        base=$(sed -n 's#^inca-serve listening on \(http://[0-9.:]*\)$#\1#p' "$tmp/$name.out")
        [ -n "$base" ] && break
        kill -0 "$(eval echo \$pid_$name)" 2>/dev/null || {
            echo "cluster-smoke: node $name died during boot" >&2
            cat "$tmp/$name.err" >&2
            exit 1
        }
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$base" ] || { echo "cluster-smoke: no boot handshake from $name within 10s" >&2; exit 1; }
}

boot s0 -shard-id s0; s0=$base
boot s1 -shard-id s1; s1=$base
boot s2 -shard-id s2; s2=$base
boot coord -shard-id coord -peers "$s0,$s1,$s2"; coord=$base
boot ref; ref=$base

# All shards up: the coordinator reports ready.
ready=$(curl -fsS "$coord/healthz/ready")
echo "$ready" | grep -q '"status":"ready"' || {
    echo "cluster-smoke: coordinator not ready with all shards up: $ready" >&2
    exit 1
}

# Sweep A: the scatter/gather result must be byte-identical to the
# single-node run — same cells, same order, same formatting.
sweepA='{"archs":["inca","baseline"],"models":["LeNet5"],"phases":["inference","training"]}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$sweepA" \
    "$coord/v1/sweep?format=csv" >"$tmp/a-coord.csv"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$sweepA" \
    "$ref/v1/sweep?format=csv" >"$tmp/a-ref.csv"
cmp -s "$tmp/a-coord.csv" "$tmp/a-ref.csv" || {
    echo "cluster-smoke: sweep A differs between coordinator and single node" >&2
    diff "$tmp/a-ref.csv" "$tmp/a-coord.csv" >&2 || true
    exit 1
}
[ "$(wc -l <"$tmp/a-coord.csv")" -eq 5 ] || {
    echo "cluster-smoke: sweep A returned $(wc -l <"$tmp/a-coord.csv") lines, want header + 4 cells" >&2
    exit 1
}

# Kill one shard the hard way (no drain, no goodbye) and sweep again
# with fresh cells: the lost shard's partition rehashes onto the
# survivors and the merged result still matches the single node byte
# for byte.
kill -9 "$pid_s2"
wait "$pid_s2" 2>/dev/null || true
sweepB='{"archs":["inca","baseline"],"models":["VGG16-CIFAR"],"phases":["inference","training"]}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$sweepB" \
    "$coord/v1/sweep?format=csv" >"$tmp/b-coord.csv"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$sweepB" \
    "$ref/v1/sweep?format=csv" >"$tmp/b-ref.csv"
cmp -s "$tmp/b-coord.csv" "$tmp/b-ref.csv" || {
    echo "cluster-smoke: sweep B (one shard lost) differs from single node" >&2
    diff "$tmp/b-ref.csv" "$tmp/b-coord.csv" >&2 || true
    exit 1
}

# Minority loss degrades readiness without flipping it: still 200, the
# dead peer visible in the body.
ready=$(curl -fsS "$coord/healthz/ready")
echo "$ready" | grep -q '"status":"degraded"' || {
    echo "cluster-smoke: readiness after shard loss: $ready (want degraded)" >&2
    exit 1
}
echo "$ready" | grep -q '"up":false' || {
    echo "cluster-smoke: dead shard not reported down: $ready" >&2
    exit 1
}

# The shard summary on a JSON sweep records the loss.
curl -fsS -X POST -H 'Content-Type: application/json' -d "$sweepB" \
    "$coord/v1/sweep" >"$tmp/b-coord.json"
grep -q '"down":1' "$tmp/b-coord.json" || {
    echo "cluster-smoke: shard summary does not report the dead peer" >&2
    exit 1
}

# The coalescing counter family is exported on every node.
curl -fsS "$coord/metrics?format=prometheus" >"$tmp/metrics"
grep -q '^inca_serve_coalesced_total ' "$tmp/metrics" || {
    echo "cluster-smoke: coordinator metrics lack inca_serve_coalesced_total" >&2
    exit 1
}

# Graceful shutdown of everything still alive.
for name in coord s0 s1 ref; do
    p=$(eval echo \$pid_$name)
    kill -TERM "$p"
    wait "$p" || { echo "cluster-smoke: node $name exited nonzero on SIGTERM" >&2; exit 1; }
done
pids=
echo "cluster-smoke: OK (coordinator $coord over 3 shards, 1 killed)"
