// Command benchgate compares two recorded benchmark baselines
// (BENCH_PR{n}.json files written by cmd/inca-bench) and fails when any
// kernel present in both regressed by more than the tolerance. It is
// the regression tripwire behind `make bench-gate` and CI: baselines
// are checked in, so the comparison is deterministic — no benchmarks
// run at gate time.
//
// Usage:
//
//	benchgate [-tolerance 0.10] OLD.json NEW.json
//
// A kernel regresses when its parallel_ns (the configuration the
// library actually ships with) grew by more than tolerance relative to
// the old baseline. Kernels that appear in only one file are reported
// and skipped — new probes enter the gate one PR later, once a second
// baseline records them. The BENCH_GATE_TOLERANCE environment variable
// overrides the default tolerance (a fraction: 0.10 means +10%).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
)

// kernelResult mirrors cmd/inca-bench's KernelResult JSON.
type kernelResult struct {
	Name       string  `json:"name"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
}

// baseline mirrors cmd/inca-bench's Baseline JSON.
type baseline struct {
	PR      int            `json:"pr"`
	Reps    int            `json:"reps"`
	Kernels []kernelResult `json:"kernels"`
}

func load(path string) (baseline, error) {
	var b baseline
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Kernels) == 0 {
		return b, fmt.Errorf("%s: no kernel results", path)
	}
	return b, nil
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tolerance := fs.Float64("tolerance", 0.10,
		"allowed fractional slowdown before the gate fails (0.10 = +10%)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if env := os.Getenv("BENCH_GATE_TOLERANCE"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(stderr, "benchgate: bad BENCH_GATE_TOLERANCE %q\n", env)
			return 2
		}
		*tolerance = v
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchgate [-tolerance 0.10] OLD.json NEW.json")
		return 2
	}
	oldB, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}
	newB, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}

	prev := make(map[string]kernelResult, len(oldB.Kernels))
	for _, k := range oldB.Kernels {
		prev[k.Name] = k
	}
	failed := 0
	compared := 0
	for _, k := range newB.Kernels {
		base, ok := prev[k.Name]
		if !ok {
			fmt.Fprintf(stdout, "NEW   %-34s %12dns (no prior baseline, not gated)\n",
				k.Name, k.ParallelNs)
			continue
		}
		delete(prev, k.Name)
		compared++
		ratio := float64(k.ParallelNs)/float64(base.ParallelNs) - 1
		status := "OK   "
		if ratio > *tolerance {
			status = "FAIL "
			failed++
		}
		fmt.Fprintf(stdout, "%s %-34s %12dns -> %12dns  %+6.1f%%\n",
			status, k.Name, base.ParallelNs, k.ParallelNs, 100*ratio)
	}
	for name := range prev {
		fmt.Fprintf(stdout, "GONE  %-34s dropped from the new baseline\n", name)
	}
	if compared == 0 {
		fmt.Fprintln(stderr, "benchgate: no kernel names in common — nothing gated")
		return 2
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "benchgate: %d kernel(s) slower than the %+.0f%% tolerance\n",
			failed, 100**tolerance)
		return 1
	}
	fmt.Fprintf(stdout, "benchgate: ok (%d kernels within %+.0f%%)\n", compared, 100**tolerance)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
