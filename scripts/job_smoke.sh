#!/bin/sh
# job_smoke.sh — end-to-end crash-resume smoke test for the durable job
# subsystem, run by `make job-smoke` and CI. Boots a reference server
# and runs an async job through inca-client for a known-good result
# body. Then boots a journaled server (-store-dir + -job-dir) with
# per-cell chaos latency so progress is slow enough to observe, submits
# the same job, waits for at least one checkpointed cell, and SIGKILLs
# the server mid-job. A restart over the same directories must recover
# the job from the journal, finish only the remaining cells, and serve
# a result byte-identical to the reference — with the resume visible in
# the inca_jobs_resumed_total metric family. Exits nonzero on any
# mismatch.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pids=
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/inca-serve" ./cmd/inca-serve
$GO build -o "$tmp/inca-client" ./cmd/inca-client

# boot NAME [extra flags...]: start one server on an ephemeral port and
# wait for its boot handshake. The resolved base URL lands in $base.
boot() {
    name=$1
    shift
    "$tmp/inca-serve" -addr 127.0.0.1:0 "$@" \
        >"$tmp/$name.out" 2>"$tmp/$name.err" &
    eval "pid_$name=$!"
    pids="$pids $!"
    base=
    i=0
    while [ $i -lt 100 ]; do
        base=$(sed -n 's#^inca-serve listening on \(http://[0-9.:]*\)$#\1#p' "$tmp/$name.out")
        [ -n "$base" ] && break
        kill -0 "$(eval echo \$pid_$name)" 2>/dev/null || {
            echo "job-smoke: server $name died during boot" >&2
            cat "$tmp/$name.err" >&2
            exit 1
        }
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$base" ] || { echo "job-smoke: no boot handshake from $name within 10s" >&2; exit 1; }
}

# The job: 8 cells (2 archs x 2 models x 2 phases). Job IDs are
# content-derived from the canonical spec, so the reference and the
# crashed server assign the same ID to the same sweep.
submit_job() {
    "$tmp/inca-client" -base "$1" job submit \
        -archs inca,baseline -models LeNet5,VGG16-CIFAR -phases inference,training
}
job_id() {
    sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1
}

# Reference run: a clean memory-only server; the job runs through
# uninterrupted and its result body is the byte-identity target.
boot ref -quiet; ref=$base
id=$(submit_job "$ref" | job_id)
[ -n "$id" ] || { echo "job-smoke: reference submit returned no job ID" >&2; exit 1; }
"$tmp/inca-client" -base "$ref" job wait "$id" >/dev/null
"$tmp/inca-client" -base "$ref" job result "$id" >"$tmp/ref.json"
[ -s "$tmp/ref.json" ] || { echo "job-smoke: empty reference result body" >&2; exit 1; }

# Crash run: journaled server with 400ms of injected latency per sweep
# cell (and the kernel budget pinned so cells run one at a time) — slow
# enough that the kill below lands mid-job with some cells checkpointed
# and some not. -chaos-prob 0 keeps the random request faults unarmed.
boot crash -store-dir "$tmp/store" -job-dir "$tmp/jobs" -kernels 1 \
    -chaos-seed 1 -chaos-prob 0 -chaos-cell-delay 400ms
crash=$base
crash_id=$(submit_job "$crash" | job_id)
[ "$crash_id" = "$id" ] || {
    echo "job-smoke: content-derived IDs differ: ref $id vs crash $crash_id" >&2
    exit 1
}

# Wait for partial progress: at least one cell checkpointed, so the
# resume has durable work to skip.
done_cells=0
i=0
while [ $i -lt 200 ]; do
    done_cells=$("$tmp/inca-client" -base "$crash" job status "$id" |
        sed -n 's/.*"cells_done": *\([0-9]*\).*/\1/p')
    [ "${done_cells:-0}" -ge 1 ] && break
    sleep 0.1
    i=$((i + 1))
done
[ "${done_cells:-0}" -ge 1 ] || {
    echo "job-smoke: no cell checkpointed within 20s" >&2
    cat "$tmp/crash.err" >&2
    exit 1
}

# Kill the server the hard way: no drain, no goodbye, no terminal
# journal record. $done_cells cells are on disk; the rest are not.
kill -9 "$pid_crash"
wait "$pid_crash" 2>/dev/null || true

# Restart over the same directories, chaos-free: the journal replay
# must requeue the job, the checkpointed cells must come from the
# store, and the result must match the reference byte for byte.
boot resumed -store-dir "$tmp/store" -job-dir "$tmp/jobs"
resumed=$base
grep -q "job journal open" "$tmp/resumed.err" || {
    echo "job-smoke: restarted server did not report the journal" >&2
    exit 1
}
"$tmp/inca-client" -base "$resumed" job wait "$id" >"$tmp/final.json"
grep -q '"state": *"succeeded"' "$tmp/final.json" || {
    echo "job-smoke: resumed job did not succeed:" >&2
    cat "$tmp/final.json" >&2
    exit 1
}
grep -q '"resumed": *1' "$tmp/final.json" || {
    echo "job-smoke: job snapshot does not record the resume:" >&2
    cat "$tmp/final.json" >&2
    exit 1
}
"$tmp/inca-client" -base "$resumed" job result "$id" >"$tmp/resumed.json"
cmp -s "$tmp/ref.json" "$tmp/resumed.json" || {
    echo "job-smoke: resumed result differs from the uninterrupted reference" >&2
    diff "$tmp/ref.json" "$tmp/resumed.json" >&2 || true
    exit 1
}

# The resume is visible in the metrics families.
curl -fsS "$resumed/metrics?format=prometheus" >"$tmp/metrics"
grep -q '^inca_jobs_resumed_total 1$' "$tmp/metrics" || {
    echo "job-smoke: metrics lack inca_jobs_resumed_total 1" >&2
    grep '^inca_jobs' "$tmp/metrics" >&2 || true
    exit 1
}
grep -q '^inca_jobs_completed_total 1$' "$tmp/metrics" || {
    echo "job-smoke: metrics lack inca_jobs_completed_total 1" >&2
    exit 1
}

# Graceful shutdown of the survivors.
for name in ref resumed; do
    p=$(eval echo \$pid_$name)
    kill -TERM "$p"
    wait "$p" || { echo "job-smoke: server $name exited nonzero on SIGTERM" >&2; exit 1; }
done
pids=
echo "job-smoke: OK (job $id: $done_cells cells checkpointed pre-kill, resumed byte-identical)"
