#!/bin/sh
# serve_smoke.sh — end-to-end smoke test for cmd/inca-serve, run by
# `make serve-smoke` and CI. Boots the server on an ephemeral port, waits
# for the boot handshake, probes /healthz, evaluates one simulate cell
# twice (the second must be a byte-identical cache hit), checks /metrics
# recorded the hit, then SIGTERMs and requires a clean drained exit.
# Exits nonzero on any mismatch.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pid=
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/inca-serve" ./cmd/inca-serve
# A wide coalescing window so the back-to-back repeat below reliably
# joins the first request's flight even on a slow CI runner.
"$tmp/inca-serve" -addr 127.0.0.1:0 -quiet -coalesce-wait 2s >"$tmp/out" 2>"$tmp/err" &
pid=$!

# Wait for the boot handshake: the resolved listen address on stdout.
base=
i=0
while [ $i -lt 100 ]; do
    base=$(sed -n 's#^inca-serve listening on \(http://[0-9.:]*\)$#\1#p' "$tmp/out")
    [ -n "$base" ] && break
    kill -0 "$pid" 2>/dev/null || {
        echo "serve-smoke: server died during boot" >&2
        cat "$tmp/err" >&2
        exit 1
    }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$base" ] || { echo "serve-smoke: no boot handshake within 10s" >&2; exit 1; }

# Liveness.
health=$(curl -fsS "$base/healthz")
[ "$health" = "ok" ] || { echo "serve-smoke: healthz said '$health'" >&2; exit 1; }

# One simulate cell, twice back to back. The analytical model is
# deterministic and the second request lands inside the coalescing
# window (on by default): it replays the first flight's recording, so
# the bodies must be byte-identical.
body='{"arch":"inca","model":"LeNet5","phase":"inference"}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" \
    "$base/v1/simulate" >"$tmp/a"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" \
    "$base/v1/simulate" >"$tmp/b"
cmp -s "$tmp/a" "$tmp/b" || { echo "serve-smoke: simulate responses differ" >&2; exit 1; }
grep -q '"arch":"INCA"' "$tmp/a" || {
    echo "serve-smoke: unexpected simulate payload:" >&2
    head -c 200 "$tmp/a" >&2
    exit 1
}

# A third request after the coalescing window expires executes for real
# and is served from the memo cache: still byte-identical.
sleep 2.5
curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" \
    "$base/v1/simulate" >"$tmp/c"
cmp -s "$tmp/a" "$tmp/c" || { echo "serve-smoke: cached response differs" >&2; exit 1; }

# The repeats are visible in /metrics: the in-window one as a coalesced
# hit, the post-window one as a cache hit.
curl -fsS "$base/metrics" >"$tmp/metrics"
grep -q '"hits":1' "$tmp/metrics" || {
    echo "serve-smoke: cache hit not recorded in /metrics" >&2
    exit 1
}
grep -q '"coalesced_hits":1' "$tmp/metrics" || {
    echo "serve-smoke: coalesced hit not recorded in /metrics" >&2
    exit 1
}

# Graceful shutdown: SIGTERM drains and the process exits 0.
kill -TERM "$pid"
wait "$pid" || { echo "serve-smoke: nonzero exit on SIGTERM" >&2; exit 1; }
grep -q drained "$tmp/out" || { echo "serve-smoke: no drain message on stdout" >&2; exit 1; }
pid=
echo "serve-smoke: OK ($base)"
