#!/bin/sh
# api_surface.sh — guards the public API surface against accidental
# breaks. Renders `go doc -all` for every non-internal package and diffs
# it against the committed golden (scripts/api_surface.golden). Run with
# -update after an intentional API change to re-record the golden; a
# bare run fails (nonzero) when the surface drifted. `make check` and CI
# both run the bare mode.
set -eu

GO=${GO:-go}
cd "$(dirname "$0")/.."
golden=scripts/api_surface.golden

render() {
    # Every package outside internal/ is public surface: the facade and
    # the runnable commands/examples (whose doc comments are user-facing).
    $GO list ./... | grep -v '/internal' | LC_ALL=C sort | while read -r pkg; do
        echo "=== $pkg ==="
        $GO doc -all "$pkg"
        echo
    done
}

case "${1:-}" in
-update)
    render >"$golden"
    echo "api_surface: recorded $golden"
    ;;
"")
    tmp=$(mktemp)
    trap 'rm -f "$tmp"' EXIT INT TERM
    render >"$tmp"
    if ! diff -u "$golden" "$tmp"; then
        echo "api_surface: public API drifted from $golden" >&2
        echo "api_surface: run 'sh scripts/api_surface.sh -update' if the change is intentional" >&2
        exit 1
    fi
    echo "api_surface: ok"
    ;;
*)
    echo "usage: $0 [-update]" >&2
    exit 2
    ;;
esac
