#!/bin/sh
# obs_smoke.sh — end-to-end smoke test for the observability plane, run
# by `make obs-smoke` and CI. Boots a 3-shard cluster plus a tracing,
# SLO-tracked coordinator and drives the three pillars at once:
#
#  - federated trace assembly: a sharded sweep's trace, fetched from the
#    coordinator, must carry shard-side sweep/cell spans the coordinator
#    never held locally, merged with its own dispatch spans;
#  - per-request cost attribution: every sweep runs with ?cost=1 and the
#    GET /v1/usage ledger must reconcile exactly (cells and attempts)
#    with the sum of the cost blocks the callers received;
#  - burn-rate health: readiness carries the SLO verdict and /metrics
#    exports the inca_slo_* families.
#
# A second act reruns the durable-job crash drill with tracing on: a
# journaled server is SIGKILLed mid-job, and the restarted server must
# finish the job, serve its journaled cost block on ?cost=1, count it in
# the usage ledger, and show the resumed execution in the trace index.
# Exits nonzero on any mismatch.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pids=
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/inca-serve" ./cmd/inca-serve
$GO build -o "$tmp/inca-client" ./cmd/inca-client

# boot NAME [extra flags...]: start one node on an ephemeral port and
# wait for its boot handshake. The resolved base URL lands in $base.
boot() {
    name=$1
    shift
    : >"$tmp/$name.out"
    : >"$tmp/$name.err"
    "$tmp/inca-serve" -addr 127.0.0.1:0 "$@" \
        >"$tmp/$name.out" 2>"$tmp/$name.err" &
    eval "pid_$name=$!"
    pids="$pids $!"
    base=
    i=0
    while [ $i -lt 100 ]; do
        base=$(sed -n 's#^inca-serve listening on \(http://[0-9.:]*\)$#\1#p' "$tmp/$name.out")
        [ -n "$base" ] && break
        kill -0 "$(eval echo \$pid_$name)" 2>/dev/null || {
            echo "obs-smoke: node $name died during boot" >&2
            cat "$tmp/$name.err" >&2
            exit 1
        }
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$base" ] || { echo "obs-smoke: no boot handshake from $name within 10s" >&2; exit 1; }
}

# json_int KEY FILE: last bare "KEY":<int> value in FILE (greedy sed) —
# right for the cost block, which is spliced at the end of a response.
# The pattern anchors on the quoted key, so "cells":[...] (an array)
# never matches and "cached_cells" never aliases "cells".
json_int() {
    sed -n 's/.*"'"$1"'": *\([0-9][0-9]*\).*/\1/p' "$2" | head -n 1
}

# totals_int KEY FILE: like json_int, but scoped to the usage ledger's
# "totals" object by cutting the per-model "rows" off first.
totals_int() {
    sed 's/"rows".*//' "$2" >"$2.totals"
    json_int "$1" "$2.totals"
}

# --- Act 1: the cluster ------------------------------------------------

boot s0 -quiet -shard-id s0 -trace-ring 4096; s0=$base
boot s1 -quiet -shard-id s1 -trace-ring 4096; s1=$base
boot s2 -quiet -shard-id s2 -trace-ring 4096; s2=$base
boot coord -quiet -shard-id coord -peers "$s0,$s1,$s2" -trace-ring 8192 \
    -slo-p99 5s -slo-err 0.01
coord=$base

# Two cost-attributed sweeps through the coordinator; keep each caller's
# cost block for the ledger reconciliation below.
sweepA='{"archs":["inca","baseline"],"models":["LeNet5"],"phases":["inference","training"]}'
sweepB='{"archs":["inca","baseline"],"models":["VGG16-CIFAR"],"phases":["inference","training"]}'
curl -fsS -D "$tmp/a.hdrs" -X POST -H 'Content-Type: application/json' \
    -d "$sweepA" "$coord/v1/sweep?cost=1" >"$tmp/a.json"
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$sweepB" "$coord/v1/sweep?cost=1" >"$tmp/b.json"
grep -q '"cost":{' "$tmp/a.json" || {
    echo "obs-smoke: sweep response carries no cost block" >&2
    exit 1
}

# Federated trace assembly: the coordinator's /v1/trace/{id} must merge
# shard-side sweep/cell spans (which only shard rings hold) with its own
# dispatch spans into one tree.
trace_id=$(awk 'tolower($1)=="x-trace-id:"{print $2}' "$tmp/a.hdrs" | tr -d '\r')
[ -n "$trace_id" ] || { echo "obs-smoke: sweep response carries no X-Trace-Id" >&2; exit 1; }
curl -fsS "$coord/v1/trace/$trace_id" >"$tmp/trace.json"
grep -q '"cluster/dispatch"' "$tmp/trace.json" || {
    echo "obs-smoke: federated trace lacks the coordinator's dispatch spans" >&2
    cat "$tmp/trace.json" >&2
    exit 1
}
grep -q '"sweep/cell"' "$tmp/trace.json" || {
    echo "obs-smoke: federated trace lacks shard-side sweep/cell spans" >&2
    cat "$tmp/trace.json" >&2
    exit 1
}
# At least one shard serves its slice of the same trace raw.
found_shard_spans=0
for s in "$s0" "$s1" "$s2"; do
    curl -fsS "$s/v1/shard/trace/$trace_id" >"$tmp/shard-trace.json"
    if grep -q '"sweep/cell"' "$tmp/shard-trace.json"; then
        found_shard_spans=1
        break
    fi
done
[ "$found_shard_spans" = 1 ] || {
    echo "obs-smoke: no shard serves sweep/cell spans of trace $trace_id" >&2
    exit 1
}
# The trace index lists the sweep's trace.
curl -fsS "$coord/v1/trace?limit=10" >"$tmp/index.json"
grep -q "\"$trace_id\"" "$tmp/index.json" || {
    echo "obs-smoke: trace index does not list $trace_id" >&2
    cat "$tmp/index.json" >&2
    exit 1
}

# Cost reconciliation: usage totals = sum of the per-request blocks.
# The ledger folds after the response writes, so give it a poll loop.
want_cells=$(( $(json_int cells "$tmp/a.json") + $(json_int cells "$tmp/b.json") ))
want_attempts=$(( $(json_int attempts "$tmp/a.json") + $(json_int attempts "$tmp/b.json") ))
[ "$want_cells" -eq 8 ] || {
    echo "obs-smoke: per-request cost blocks total $want_cells cells, want 8" >&2
    exit 1
}
got_cells=
i=0
while [ $i -lt 50 ]; do
    curl -fsS "$coord/v1/usage" >"$tmp/usage.json"
    got_cells=$(totals_int cells "$tmp/usage.json")
    [ "${got_cells:-0}" -ge "$want_cells" ] && break
    sleep 0.1
    i=$((i + 1))
done
[ "${got_cells:-0}" -eq "$want_cells" ] || {
    echo "obs-smoke: usage ledger has $got_cells cells, callers were billed $want_cells" >&2
    cat "$tmp/usage.json" >&2
    exit 1
}
got_attempts=$(totals_int attempts "$tmp/usage.json")
[ "${got_attempts:-0}" -eq "$want_attempts" ] || {
    echo "obs-smoke: usage ledger has $got_attempts attempts, callers were billed $want_attempts" >&2
    exit 1
}
grep -q '"model":"LeNet5"' "$tmp/usage.json" || {
    echo "obs-smoke: usage rows lack the LeNet5 attribution" >&2
    cat "$tmp/usage.json" >&2
    exit 1
}

# SLO health: readiness carries the tracker's verdict, /metrics the
# burn-rate families, and clean traffic reads ok.
curl -fsS "$coord/healthz/ready" >"$tmp/ready.json"
grep -q '"slo":{' "$tmp/ready.json" || {
    echo "obs-smoke: readiness carries no SLO block: $(cat "$tmp/ready.json")" >&2
    exit 1
}
grep -q '"status":"ready"' "$tmp/ready.json" || {
    echo "obs-smoke: coordinator not ready under clean traffic: $(cat "$tmp/ready.json")" >&2
    exit 1
}
curl -fsS "$coord/metrics?format=prometheus" >"$tmp/metrics"
for fam in 'inca_slo_error_burn_rate{window="5m"}' 'inca_slo_degraded 0' \
    'inca_cost_cells_total 8' 'inca_build_info{' 'inca_trace_ring_evicted_total'; do
    grep -qF "$fam" "$tmp/metrics" || {
        echo "obs-smoke: metrics lack $fam" >&2
        grep -E '^inca_(slo|cost|build|trace)' "$tmp/metrics" >&2 || true
        exit 1
    }
done

# --- Act 2: crash-resumed job, traced and billed -----------------------

boot crash -quiet -store-dir "$tmp/store" -job-dir "$tmp/jobs" -kernels 1 \
    -trace-ring 4096 -chaos-seed 1 -chaos-prob 0 -chaos-cell-delay 400ms
crash=$base
id=$("$tmp/inca-client" -base "$crash" job submit \
    -archs inca,baseline -models LeNet5,VGG16-CIFAR -phases inference,training |
    sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1)
[ -n "$id" ] || { echo "obs-smoke: submit returned no job ID" >&2; exit 1; }

done_cells=0
i=0
while [ $i -lt 200 ]; do
    done_cells=$("$tmp/inca-client" -base "$crash" job status "$id" |
        sed -n 's/.*"cells_done": *\([0-9]*\).*/\1/p')
    [ "${done_cells:-0}" -ge 1 ] && break
    sleep 0.1
    i=$((i + 1))
done
[ "${done_cells:-0}" -ge 1 ] || {
    echo "obs-smoke: no cell checkpointed within 20s" >&2
    cat "$tmp/crash.err" >&2
    exit 1
}
kill -9 "$pid_crash"
wait "$pid_crash" 2>/dev/null || true

boot resumed -quiet -store-dir "$tmp/store" -job-dir "$tmp/jobs" -trace-ring 4096
resumed=$base
"$tmp/inca-client" -base "$resumed" job wait "$id" >"$tmp/final.json"
grep -q '"state": *"succeeded"' "$tmp/final.json" || {
    echo "obs-smoke: resumed job did not succeed:" >&2
    cat "$tmp/final.json" >&2
    exit 1
}

# The finished job serves its journaled cost block on opt-in only.
curl -fsS "$resumed/v1/jobs/$id?cost=1" >"$tmp/job-cost.json"
grep -q '"cost":{' "$tmp/job-cost.json" || {
    echo "obs-smoke: job snapshot lacks the cost block on ?cost=1" >&2
    cat "$tmp/job-cost.json" >&2
    exit 1
}
job_cells=$(json_int cells "$tmp/job-cost.json")
[ "${job_cells:-0}" -eq 8 ] || {
    echo "obs-smoke: resumed job billed $job_cells cells, want 8" >&2
    exit 1
}
curl -fsS "$resumed/v1/jobs/$id" >"$tmp/job-plain.json"
if grep -q '"cost":{' "$tmp/job-plain.json"; then
    echo "obs-smoke: cost block leaked into the default job snapshot" >&2
    exit 1
fi

# The job execution is billed in the ledger and visible in the trace
# index as a serve/job root.
curl -fsS "$resumed/v1/usage" >"$tmp/usage2.json"
jobs_billed=$(totals_int jobs "$tmp/usage2.json")
[ "${jobs_billed:-0}" -ge 1 ] || {
    echo "obs-smoke: usage ledger billed no job execution" >&2
    cat "$tmp/usage2.json" >&2
    exit 1
}
curl -fsS "$resumed/v1/trace?limit=20" >"$tmp/index2.json"
grep -q '"serve/job"' "$tmp/index2.json" || {
    echo "obs-smoke: trace index does not show the resumed job execution" >&2
    cat "$tmp/index2.json" >&2
    exit 1
}

# Graceful shutdown of everything still alive.
for name in coord s0 s1 s2 resumed; do
    p=$(eval echo \$pid_$name)
    kill -TERM "$p"
    wait "$p" || { echo "obs-smoke: node $name exited nonzero on SIGTERM" >&2; exit 1; }
done
pids=
echo "obs-smoke: OK (federated trace $trace_id, $want_cells cells reconciled, job $id resumed and billed)"
