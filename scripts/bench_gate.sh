#!/bin/sh
# bench_gate.sh — deterministic performance-regression gate, run by
# `make bench-gate` and CI. Picks the two newest checked-in benchmark
# baselines (BENCH_PR*.json, ordered by PR number in the filename) and
# fails when any kernel present in both regressed by more than 10%
# (override with BENCH_GATE_TOLERANCE, a fraction). Baselines are
# committed files, so the gate never runs benchmarks itself — CI noise
# cannot flake it. Record a new baseline with `make bench-pr<N>` on the
# machine of record before relying on its numbers.
#
# Usage: bench_gate.sh [OLD.json NEW.json]   (auto-picks when omitted)
set -eu

GO=${GO:-go}
cd "$(dirname "$0")/.."

if [ $# -eq 2 ]; then
    old=$1
    new=$2
elif [ $# -eq 0 ]; then
    # Newest two baselines by PR number. `ls` cannot sort numerically on
    # the embedded number, so sort on the digits between PR and .json.
    set -- $(ls BENCH_PR*.json 2>/dev/null | sort -t R -k 2 -n)
    if [ $# -lt 2 ]; then
        echo "bench_gate: need at least two BENCH_PR*.json baselines, found $#" >&2
        exit 2
    fi
    while [ $# -gt 2 ]; do shift; done
    old=$1
    new=$2
else
    echo "usage: $0 [OLD.json NEW.json]" >&2
    exit 2
fi

echo "bench_gate: $old -> $new (tolerance ${BENCH_GATE_TOLERANCE:-0.10})"
exec $GO run ./scripts/benchgate "$old" "$new"
