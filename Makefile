# Tier-1 gate for this repo. `make check` is what CI and reviewers run;
# it must pass on every commit.

GO ?= go

.PHONY: check build test vet race api-surface api-surface-update bench bench-pr6 bench-pr7 bench-pr8 bench-pr9 bench-pr10 bench-gate bench-sweep serve-smoke cluster-smoke job-smoke obs-smoke chaos trace profile

check: vet build race api-surface bench-gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Golden `go doc` diff over every non-internal package: fails when the
# public API surface drifts from scripts/api_surface.golden. Re-record
# with `make api-surface-update` after an intentional change.
api-surface:
	GO=$(GO) sh scripts/api_surface.sh

api-surface-update:
	GO=$(GO) sh scripts/api_surface.sh -update

# Tensor-kernel serial-vs-parallel baseline, recorded in the repo root.
bench:
	$(GO) run ./cmd/inca-bench -o BENCH_PR2.json

# Dataflow/auto-tuner era baseline for this PR, recorded in the repo root.
bench-pr6:
	$(GO) run ./cmd/inca-bench -o BENCH_PR6.json

# Result-store era baseline: the four tensor kernels plus the
# store-warm-start probe (cold recompute vs warm disk replay).
bench-pr7:
	$(GO) run ./cmd/inca-bench -o BENCH_PR7.json -pr 7

# Cluster era baseline: everything above plus the request-coalescing
# probe (a 32-request thundering herd, coalescer off vs on).
bench-pr8:
	$(GO) run ./cmd/inca-bench -o BENCH_PR8.json -pr 8

# Durable-jobs era baseline: everything above plus the job-resume probe
# (a 64-cell async job cold vs resumed against 32 checkpointed cells).
bench-pr9:
	$(GO) run ./cmd/inca-bench -o BENCH_PR9.json -pr 9

# Observability-plane era baseline: everything above plus the
# instrumentation overhead probe (traced + SLO-tracked + cost-attributed
# sweeps vs bare ones).
bench-pr10:
	$(GO) run ./cmd/inca-bench -o BENCH_PR10.json -pr 10

# Deterministic perf-regression gate: compares the two newest committed
# BENCH_PR*.json baselines and fails on a >10% slowdown in any kernel
# present in both. Override the tolerance with BENCH_GATE_TOLERANCE.
bench-gate:
	GO=$(GO) sh scripts/bench_gate.sh

# Sweep-engine scaling benchmark (serial vs 2/4/8 workers + warm cache).
bench-sweep:
	$(GO) test -bench PaperSweep -benchtime 10x -run xxx ./internal/sweep/

# Chaos suite: every deterministic fault-injection, retry, drain, and
# stuck-device test under the race detector. Seeds are fixed in the
# tests, so a failure here reproduces exactly by rerunning the target.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Retry|Stuck|Readiness|MaxBody|Drain|Backoff|Transient|RetryAfter|Exhausted' \
		./internal/fault/ ./internal/sweep/ ./internal/serve/ \
		./internal/client/ ./internal/rram/ ./internal/train/ .

# Observability suite under the race detector: the obs tracer itself,
# the traced sim/sweep/serve paths (deterministic step clocks pin every
# timestamp), kernel-stats counters, and the admission-gauge invariants.
trace:
	$(GO) test -race -run 'Trace|Traced|KernelStats|Stats|QueuedGauge|Prometheus|LatencyBuckets|Pprof' \
		./internal/obs/ ./internal/sim/ ./internal/sweep/ \
		./internal/serve/ ./internal/tensor/

# CPU profile of the kernel benchmark (the numeric hot path); inspect
# with `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/inca-bench -cpuprofile cpu.pprof

# End-to-end smoke of the HTTP service: boot inca-serve, probe /healthz,
# evaluate one simulate cell twice (responses must be byte-identical),
# then SIGTERM and require a clean drained exit.
serve-smoke:
	GO=$(GO) sh scripts/serve_smoke.sh

# End-to-end smoke of the sharded cluster: boot 3 shards + coordinator +
# a single-node reference, sweep through the coordinator (CSV must be
# byte-identical to the reference), SIGKILL one shard and sweep again
# (still byte-identical, readiness degraded but 200), then clean SIGTERM
# exits for every surviving node.
cluster-smoke:
	GO=$(GO) sh scripts/cluster_smoke.sh

# End-to-end crash-resume smoke of the durable job subsystem: run a job
# clean for a reference body, rerun it on a journaled server and
# SIGKILL mid-job, restart over the same directories, and require the
# resumed result byte-identical with the resume visible in /metrics.
job-smoke:
	GO=$(GO) sh scripts/job_smoke.sh

# End-to-end smoke of the observability plane: boot a 3-shard cluster
# with tracing, SLO objectives, and durable jobs; run a cost-attributed
# sharded sweep and a SIGKILL-resumed job; require the federated trace
# on the coordinator to carry shard-side spans, the usage ledger to
# reconcile with the per-request cost blocks, and burn-rate families in
# /metrics.
obs-smoke:
	GO=$(GO) sh scripts/obs_smoke.sh
