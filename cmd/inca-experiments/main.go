// Command inca-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	inca-experiments            # run every experiment
//	inca-experiments -fast      # skip the training-based experiments
//	inca-experiments -only fig11,table5
//	inca-experiments -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/inca-arch/inca/internal/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("inca-experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fast := fs.Bool("fast", false, "skip experiments that train networks (Table I, Table VI)")
	only := fs.String("only", "", "comma-separated experiment ids to run (see -list)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range suite.All() {
			heavy := ""
			if e.Heavy {
				heavy = " (heavy)"
			}
			fmt.Fprintf(stdout, "%-14s %s%s\n", e.ID, e.Name, heavy)
		}
		return 0
	}

	var selected []suite.Experiment
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			e, err := suite.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			selected = append(selected, e)
		}
	} else {
		for _, e := range suite.All() {
			if *fast && e.Heavy {
				continue
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Fprintf(stdout, "=== %s ===\n", e.Name)
		fmt.Fprintln(stdout, e.Run())
	}
	return 0
}
