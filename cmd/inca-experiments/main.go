// Command inca-experiments regenerates the paper's tables and figures.
// Experiments run concurrently on the sweep engine's worker pool (one
// shared simulation cache deduplicates the cells that figures have in
// common) and print in deterministic order regardless of -jobs.
//
// Usage:
//
//	inca-experiments            # run every experiment
//	inca-experiments -fast      # skip the training-based experiments
//	inca-experiments -only fig11,table5
//	inca-experiments -jobs 8 -timeout 5m
//	inca-experiments -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/inca-arch/inca/internal/cli"
	"github.com/inca-arch/inca/internal/store"
	"github.com/inca-arch/inca/internal/suite"
	"github.com/inca-arch/inca/internal/sweep"
)

func main() {
	// Ctrl-C / SIGTERM cancels the sweep engine cleanly: in-flight cells
	// finish, unexecuted ones report the context error, and the command
	// exits through its normal error path instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("inca-experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fast := fs.Bool("fast", false, "skip experiments that train networks (Table I, Table VI)")
	only := fs.String("only", "", "comma-separated experiment ids to run (see -list)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	jobs := fs.Int("jobs", 0, "experiments run concurrently (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	storeDir := fs.String("store-dir", "", "persist simulation cells in this directory so repeated runs warm-start (empty = memory-only)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "result-store size cap in bytes (0 = 256 MiB)")
	storeTTL := fs.Duration("store-ttl", 0, "result-store record time-to-live (0 = keep forever)")
	logLevel := cli.LogLevelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger, err := cli.NewLogger(stderr, *logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "inca-experiments:", err)
		return 2
	}

	// -store-dir attaches a persistent tier to the suite's shared cache:
	// cells computed by an earlier invocation load from disk.
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{MaxBytes: *storeMaxBytes, TTL: *storeTTL})
		if err != nil {
			fmt.Fprintln(stderr, "inca-experiments:", err)
			return 1
		}
		defer st.Close()
		suite.AttachResultStore(st)
		logger.Info("result store open", "dir", st.Dir(), "entries", st.Len())
	}

	if *list {
		for _, e := range suite.All() {
			heavy := ""
			if e.Heavy {
				heavy = " (heavy)"
			}
			fmt.Fprintf(stdout, "%-14s %s%s\n", e.ID, e.Name, heavy)
		}
		return 0
	}

	var selected []suite.Experiment
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			e, err := suite.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			selected = append(selected, e)
		}
	} else {
		for _, e := range suite.All() {
			if *fast && e.Heavy {
				continue
			}
			selected = append(selected, e)
		}
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	logger.Debug("running experiments", "count", len(selected), "jobs", *jobs)
	// Render every experiment on the engine's fan-out primitive, then
	// print in selection order so -jobs never changes the output.
	outputs, err := sweep.Map(ctx, *jobs, selected,
		func(ctx context.Context, e suite.Experiment) (string, error) {
			return e.Run(ctx)
		})
	for i, e := range selected {
		if i < len(outputs) && outputs[i] != "" {
			fmt.Fprintf(stdout, "=== %s ===\n", e.Name)
			fmt.Fprintln(stdout, outputs[i])
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}
