package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"fig11", "table5", "ext-endurance", "(heavy)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunSelectedExperiments(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "table5, fig7b"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Table V") || !strings.Contains(out.String(), "Fig 7b") {
		t.Fatalf("missing selected experiments:\n%s", out.String())
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Fatalf("stderr = %s", errOut.String())
	}
}

func TestBadFlagFails(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
