package main

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"fig11", "table5", "ext-endurance", "(heavy)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunSelectedExperiments(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-only", "table5, fig7b"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Table V") || !strings.Contains(out.String(), "Fig 7b") {
		t.Fatalf("missing selected experiments:\n%s", out.String())
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-only", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Fatalf("stderr = %s", errOut.String())
	}
}

func TestBadFlagFails(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestGoldenFastOutput pins the -fast output to the report captured
// before the suite moved onto the sweep engine. Any diff here means the
// rewire changed simulated numbers or formatting.
func TestGoldenFastOutput(t *testing.T) {
	want, err := os.ReadFile("testdata/fast.golden")
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-fast"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	if out.String() != string(want) {
		t.Fatalf("-fast output drifted from testdata/fast.golden:\n%s",
			firstDiff(out.String(), string(want)))
	}
}

// TestParallelOutputIdentical asserts -jobs never changes the report.
func TestParallelOutputIdentical(t *testing.T) {
	var serial, parallel bytes.Buffer
	var errOut bytes.Buffer
	if code := run(context.Background(), []string{"-fast", "-jobs", "1"}, &serial, &errOut); code != 0 {
		t.Fatalf("serial run exited %d: %s", code, errOut.String())
	}
	if code := run(context.Background(), []string{"-fast", "-jobs", "4"}, &parallel, &errOut); code != 0 {
		t.Fatalf("parallel run exited %d: %s", code, errOut.String())
	}
	if serial.String() != parallel.String() {
		t.Fatalf("-jobs 4 output differs from serial:\n%s",
			firstDiff(parallel.String(), serial.String()))
	}
}

func TestTimeoutFlag(t *testing.T) {
	// A generous timeout must not disturb the run.
	var timed, untimed, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-only", "fig11", "-timeout", "1m"}, &timed, &errOut); code != 0 {
		t.Fatalf("timed run exited %d: %s", code, errOut.String())
	}
	if code := run(context.Background(), []string{"-only", "fig11"}, &untimed, &errOut); code != 0 {
		t.Fatalf("untimed run exited %d: %s", code, errOut.String())
	}
	if timed.String() != untimed.String() {
		t.Fatal("-timeout changed the output")
	}
	// An already-expired deadline aborts with exit 1.
	errOut.Reset()
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-only", "fig7b", "-timeout", "1ns"}, &out, &errOut); code != 1 {
		t.Fatalf("expired deadline exited %d, want 1 (stderr %q)", code, errOut.String())
	}
}

// firstDiff renders the first line where two outputs diverge.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return "first divergent line:\n got: " + g[i] + "\nwant: " + w[i]
		}
	}
	return "outputs are a prefix of each other (length mismatch)"
}
