// Command inca-bench measures the tensor kernel hot path serial versus
// parallel and records the result as a JSON baseline (BENCH_PR{n}.json
// in the repo root; scripts/bench_gate.sh compares consecutive
// baselines). The kernels are shaped like the ResNet-50 mid-network
// layers that dominate the training experiments' wall clock, plus a
// store warm-start probe timing disk-served replay against cold
// recompute, a request-coalescing probe timing a thundering herd of
// identical sweeps with the coalescer off versus on, a job-resume
// probe timing a 64-cell async job from scratch versus resumed against
// a store already holding half its cells, and an observability-overhead
// probe timing fully instrumented sweeps (tracing, SLO tracking, cost
// attribution) against bare ones.
//
// Usage:
//
//	inca-bench                     # print the report to stdout
//	inca-bench -o BENCH_PR8.json -pr 8   # write the baseline file
//	inca-bench -reps 5 -workers 8  # more repetitions, explicit budget
//	inca-bench -cpuprofile cpu.pprof   # capture a CPU profile of the run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"github.com/inca-arch/inca/internal/cli"
	"github.com/inca-arch/inca/internal/fault"
	"github.com/inca-arch/inca/internal/job"
	"github.com/inca-arch/inca/internal/nn"
	"github.com/inca-arch/inca/internal/obs"
	"github.com/inca-arch/inca/internal/serve"
	"github.com/inca-arch/inca/internal/sim"
	"github.com/inca-arch/inca/internal/store"
	"github.com/inca-arch/inca/internal/sweep"
	"github.com/inca-arch/inca/internal/tensor"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// KernelResult is one kernel's serial-versus-parallel timing.
type KernelResult struct {
	Name       string  `json:"name"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
}

// Baseline is the file format of BENCH_PR2.json.
type Baseline struct {
	PR         int            `json:"pr"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Workers    int            `json:"workers"`
	Reps       int            `json:"reps"`
	Kernels    []KernelResult `json:"kernels"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("inca-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the JSON baseline to this file (default: stdout only)")
	pr := fs.Int("pr", 8, "PR number recorded in the baseline")
	reps := fs.Int("reps", 3, "repetitions per kernel; the fastest is kept")
	workers := fs.Int("workers", 0, "parallel worker budget (0 = GOMAXPROCS)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the benchmark run to this file")
	logLevel := cli.LogLevelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger, err := cli.NewLogger(stderr, *logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "inca-bench:", err)
		return 2
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "inca-bench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "inca-bench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
		logger.Info("cpu profiling", "file", *cpuprofile)
	}
	logger.Debug("benchmarking", "reps", *reps, "workers", *workers)
	b := runBenchmarks(*reps, *workers)
	b.PR = *pr
	if res, err := benchStore(*reps); err != nil {
		fmt.Fprintln(stderr, "inca-bench: store benchmark:", err)
		return 1
	} else {
		b.Kernels = append(b.Kernels, res)
	}
	if res, err := benchCoalesce(*reps); err != nil {
		fmt.Fprintln(stderr, "inca-bench: coalesce benchmark:", err)
		return 1
	} else {
		b.Kernels = append(b.Kernels, res)
	}
	if res, err := benchJobResume(*reps); err != nil {
		fmt.Fprintln(stderr, "inca-bench: job resume benchmark:", err)
		return 1
	} else {
		b.Kernels = append(b.Kernels, res)
	}
	if res, err := benchObsOverhead(*reps); err != nil {
		fmt.Fprintln(stderr, "inca-bench: observability overhead benchmark:", err)
		return 1
	} else {
		b.Kernels = append(b.Kernels, res)
	}
	enc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "inca-bench:", err)
		return 1
	}
	enc = append(enc, '\n')
	fmt.Fprintf(stdout, "%s", enc)
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(stderr, "inca-bench:", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %s\n", *out)
	}
	return 0
}

// runBenchmarks times each kernel at budget 1 and at the requested
// worker budget, keeping the fastest of reps runs for each mode.
func runBenchmarks(reps, workers int) Baseline {
	rng := rand.New(rand.NewSource(1))
	spec := tensor.ConvSpec{Stride: 1, Pad: 1}
	// ResNet-50 conv3_x body shapes: 128 channels at 28×28, 3×3 kernels.
	x := tensor.Randn(rng, 1, 128, 28, 28)
	w := tensor.Randn(rng, 1, 128, 128, 3, 3)
	dw := tensor.Randn(rng, 1, 128, 3, 3)
	// MatMul shaped like the same conv lowered via im2col.
	a := tensor.Randn(rng, 1, 128, 128*3*3)
	bmat := tensor.Randn(rng, 1, 128*3*3, 28*28)
	delta := tensor.Randn(rng, 1, 128, 28, 28)

	kernels := []struct {
		name string
		f    func()
	}{
		{"Conv2D-128x28x28-k3", func() { tensor.Conv2D(x, w, spec) }},
		{"DepthwiseConv2D-128x28x28-k3", func() { tensor.DepthwiseConv2D(x, dw, spec) }},
		{"MatMul-128x1152x784", func() { tensor.MatMul(a, bmat) }},
		{"ConvBackwardWeights-128x28x28", func() { tensor.ConvBackwardWeights(x, delta, spec, 3, 3) }},
	}

	b := Baseline{GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: workers, Reps: reps}
	for _, k := range kernels {
		serial := timeKernel(1, reps, k.f)
		parallel := timeKernel(workers, reps, k.f)
		b.Kernels = append(b.Kernels, KernelResult{
			Name:       k.name,
			SerialNs:   serial.Nanoseconds(),
			ParallelNs: parallel.Nanoseconds(),
			Speedup:    float64(serial) / float64(parallel),
		})
	}
	return b
}

// benchStore times warm-start replay against cold recompute: an
// 8-cell sweep simulated once into a fresh persistent store
// ("serial" = cold, simulate + persist), then replayed through fresh
// in-memory caches that can only be satisfied from disk
// ("parallel" = warm, fastest of reps). The speedup is the latency
// dividend a restarted process gets per already-computed cell.
func benchStore(reps int) (KernelResult, error) {
	dir, err := os.MkdirTemp("", "inca-bench-store-*")
	if err != nil {
		return KernelResult{}, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return KernelResult{}, err
	}
	defer st.Close()

	plan := sweep.Plan{
		Archs:    []sweep.Arch{sweep.INCAArch(), sweep.BaselineArch()},
		Networks: []*nn.Network{nn.LeNet5(), nn.VGG16CIFAR()},
		Phases:   []sim.Phase{sim.Inference, sim.Training},
	}
	ctx := context.Background()
	runOnce := func() (time.Duration, error) {
		cache := sweep.NewCache()
		cache.SetTier(st)
		start := time.Now()
		results, err := sweep.Run(ctx, plan, sweep.Options{Cache: cache})
		if err != nil {
			return 0, err
		}
		for _, r := range results {
			if r.Err != nil {
				return 0, r.Err
			}
		}
		return time.Since(start), nil
	}

	cold, err := runOnce()
	if err != nil {
		return KernelResult{}, err
	}
	warm := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		d, err := runOnce()
		if err != nil {
			return KernelResult{}, err
		}
		if d < warm {
			warm = d
		}
	}
	return KernelResult{
		Name:       "StoreWarmStart-8cells",
		SerialNs:   cold.Nanoseconds(),
		ParallelNs: warm.Nanoseconds(),
		Speedup:    float64(cold) / float64(warm),
	}, nil
}

// benchCoalesce times a thundering herd — herdSize concurrent,
// identical sweep requests against an in-process server — with the
// coalescing layer off ("serial": every request runs the handler; the
// memo cache still dedups cells) versus on ("parallel": one leader
// executes, the herd replays its recorded response). The speedup is the
// per-request dividend of answering a herd before admission. Each run
// gets a fresh server and cache; the fastest of reps runs is kept for
// each mode.
func benchCoalesce(reps int) (KernelResult, error) {
	const herdSize = 32
	body := `{"archs":["inca","baseline"],"models":["LeNet5","VGG16-CIFAR"],"phases":["inference","training"]}`

	herd := func(coalesce bool) (time.Duration, error) {
		s := serve.New(serve.Options{
			Coalesce: serve.CoalesceOptions{Enabled: coalesce, MaxWait: 5 * time.Second},
		})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		var wg sync.WaitGroup
		errs := make(chan error, herdSize)
		start := time.Now()
		for i := 0; i < herdSize; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("herd request answered %d", resp.StatusCode)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return 0, err
		}
		return time.Since(start), nil
	}

	best := func(coalesce bool) (time.Duration, error) {
		if _, err := herd(coalesce); err != nil { // warm-up run
			return 0, err
		}
		fastest := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			d, err := herd(coalesce)
			if err != nil {
				return 0, err
			}
			if d < fastest {
				fastest = d
			}
		}
		return fastest, nil
	}

	off, err := best(false)
	if err != nil {
		return KernelResult{}, err
	}
	on, err := best(true)
	if err != nil {
		return KernelResult{}, err
	}
	return KernelResult{
		Name:       "CoalesceHerd-32x8cells",
		SerialNs:   off.Nanoseconds(),
		ParallelNs: on.Nanoseconds(),
		Speedup:    float64(off) / float64(on),
	}, nil
}

// benchJobResume times the checkpoint dividend of the durable job
// subsystem: a 64-cell job (2 archs × 2 models × 2 phases × 8 batch
// overrides) submitted through POST /v1/jobs and polled to completion.
// "Serial" runs it cold against an empty store; "parallel" runs it on a
// fresh server whose store was pre-seeded with 32 of the 64 cells by an
// earlier process — exactly what a crash-resumed job sees, where every
// checkpointed cell is a disk hit instead of a re-simulation. A fixed
// 2ms latency fault at every simulated cell stands in for expensive
// cells (the analytic cells here simulate faster than a disk hit
// decodes, which would drown the dividend in decode noise); disk hits
// bypass the cell site, so the speedup is the wall clock recovered per
// already-checkpointed cell.
func benchJobResume(reps int) (KernelResult, error) {
	const (
		fullSpec = `{"archs":["inca","baseline"],"models":["LeNet5","VGG16-CIFAR"],"phases":["inference","training"],` +
			`"overrides":[{"batch":1},{"batch":2},{"batch":4},{"batch":8},{"batch":16},{"batch":32},{"batch":64},{"batch":128}]}`
		halfSpec = `{"archs":["inca","baseline"],"models":["LeNet5","VGG16-CIFAR"],"phases":["inference","training"],` +
			`"overrides":[{"batch":1},{"batch":2},{"batch":4},{"batch":8}]}`
		cellCost = 2 * time.Millisecond
	)

	// prefill simulates the half sweep into the store through its own
	// server, then shuts it down — the timed run below starts with cold
	// in-memory caches and can only recover the 32 cells from disk.
	prefill := func(storeDir string) error {
		st, err := store.Open(storeDir, store.Options{})
		if err != nil {
			return err
		}
		defer st.Close()
		s := serve.New(serve.Options{Store: st})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(halfSpec))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("prefill sweep answered %d", resp.StatusCode)
		}
		return nil
	}

	// runJob boots a fresh server over storeDir, submits the full job,
	// and polls it to its terminal state.
	runJob := func(storeDir string) (time.Duration, error) {
		st, err := store.Open(storeDir, store.Options{})
		if err != nil {
			return 0, err
		}
		defer st.Close()
		jobDir, err := os.MkdirTemp("", "inca-bench-job-jnl-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(jobDir)
		jm, err := job.Open(jobDir, job.Options{Runners: 1})
		if err != nil {
			return 0, err
		}
		defer jm.Close()
		inj := fault.New(1)
		inj.Add(fault.Rule{Site: sweep.SpanCell + "/*", Kind: fault.KindLatency, Prob: 1, Delay: cellCost})
		s := serve.New(serve.Options{Store: st, Jobs: jm, Inject: inj})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		start := time.Now()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(fullSpec))
		if err != nil {
			return 0, err
		}
		var snap job.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("job submit answered %d", resp.StatusCode)
		}
		// The whole job finishes in milliseconds, so the poll interval
		// must be well under it — a coarse poll would time its own
		// quantization instead of the resume dividend.
		for !snap.State.Terminal() {
			time.Sleep(500 * time.Microsecond)
			r, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID)
			if err != nil {
				return 0, err
			}
			err = json.NewDecoder(r.Body).Decode(&snap)
			r.Body.Close()
			if err != nil {
				return 0, err
			}
		}
		if snap.State != job.StateSucceeded {
			return 0, fmt.Errorf("job finished %s: %s", snap.State, snap.Error)
		}
		return time.Since(start), nil
	}

	// timed runs the job against a fresh store dir, optionally seeded
	// with the half sweep first, and keeps the fastest of reps runs.
	timed := func(seed bool) (time.Duration, error) {
		fastest := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			dir, err := os.MkdirTemp("", "inca-bench-job-store-*")
			if err != nil {
				return 0, err
			}
			if seed {
				if err := prefill(dir); err != nil {
					os.RemoveAll(dir)
					return 0, err
				}
			}
			d, err := runJob(dir)
			os.RemoveAll(dir)
			if err != nil {
				return 0, err
			}
			if d < fastest {
				fastest = d
			}
		}
		return fastest, nil
	}

	cold, err := timed(false)
	if err != nil {
		return KernelResult{}, err
	}
	resumed, err := timed(true)
	if err != nil {
		return KernelResult{}, err
	}
	return KernelResult{
		Name:       "JobResume-64cells-32ckpt",
		SerialNs:   cold.Nanoseconds(),
		ParallelNs: resumed.Nanoseconds(),
		Speedup:    float64(cold) / float64(resumed),
	}, nil
}

// benchObsOverhead prices the observability plane: the same 8-cell
// sweep served by a bare server (no tracer, no objectives, no cost
// flag) versus a fully instrumented one (tracer ring, SLO burn-rate
// tracking, ?cost=1 attribution on every request). "Serial" is the
// bare wall clock and "parallel" the instrumented one — the gated
// field — so the bench gate trips when the instrumented request path
// regresses, and the speedup (bare/instrumented, < 1 by construction)
// reads as the plane's price. Most requests are warm-cache replays, so
// the probe prices instrumentation against the service's cheapest
// request, its worst case. Requests run serially so it measures
// per-request overhead, not contention; each mode gets a fresh server
// (cold memo cache on the first request, warm on the rest — the same
// mix both modes see).
func benchObsOverhead(reps int) (KernelResult, error) {
	const requests = 16
	body := `{"archs":["inca","baseline"],"models":["LeNet5","VGG16-CIFAR"],"phases":["inference","training"]}`

	drive := func(instrumented bool) (time.Duration, error) {
		opt := serve.Options{}
		path := "/v1/sweep"
		if instrumented {
			opt.Tracer = obs.NewTracer(obs.WithRing(4096))
			opt.SLO = serve.SLOOptions{TargetP99: time.Second, ErrorBudget: 0.001}
			path += "?cost=1"
		}
		s := serve.New(opt)
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		start := time.Now()
		for i := 0; i < requests; i++ {
			resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
			if err != nil {
				return 0, err
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				resp.Body.Close()
				return 0, err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return 0, fmt.Errorf("sweep answered %d", resp.StatusCode)
			}
		}
		return time.Since(start), nil
	}

	best := func(instrumented bool) (time.Duration, error) {
		if _, err := drive(instrumented); err != nil { // warm-up run
			return 0, err
		}
		fastest := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			d, err := drive(instrumented)
			if err != nil {
				return 0, err
			}
			if d < fastest {
				fastest = d
			}
		}
		return fastest, nil
	}

	off, err := best(false)
	if err != nil {
		return KernelResult{}, err
	}
	on, err := best(true)
	if err != nil {
		return KernelResult{}, err
	}
	return KernelResult{
		Name:       "ObsOverhead-16x8cells",
		SerialNs:   off.Nanoseconds(),
		ParallelNs: on.Nanoseconds(),
		Speedup:    float64(off) / float64(on),
	}, nil
}

// timeKernel runs f under the given worker budget and returns the
// fastest of reps timings.
func timeKernel(budget, reps int, f func()) time.Duration {
	prev := tensor.SetParallelism(budget)
	defer tensor.SetParallelism(prev)
	f() // warm up caches and the token pool
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
