package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestRunBenchmarksShape(t *testing.T) {
	b := runBenchmarks(1, 2)
	if b.GOMAXPROCS != runtime.GOMAXPROCS(0) || b.Workers != 2 {
		t.Fatalf("baseline header = %+v", b)
	}
	if len(b.Kernels) != 4 {
		t.Fatalf("kernels = %d, want 4", len(b.Kernels))
	}
	for _, k := range b.Kernels {
		if k.Name == "" || k.SerialNs <= 0 || k.ParallelNs <= 0 || k.Speedup <= 0 {
			t.Fatalf("degenerate kernel result %+v", k)
		}
	}
}

func TestBenchStoreWarmStart(t *testing.T) {
	res, err := benchStore(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "StoreWarmStart-8cells" || res.SerialNs <= 0 || res.ParallelNs <= 0 || res.Speedup <= 0 {
		t.Fatalf("degenerate store result %+v", res)
	}
}

func TestRunWritesJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", path, "-reps", "1", "-workers", "2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	var fromStdout, fromFile Baseline
	if err := json.Unmarshal(stdout.Bytes(), &fromStdout); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &fromFile); err != nil {
		t.Fatalf("file is not valid JSON: %v", err)
	}
	if len(fromFile.Kernels) != len(fromStdout.Kernels) {
		t.Fatal("file and stdout disagree")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
