// Command inca-sim runs a single accelerator simulation and prints the
// energy/latency report with its component breakdown and (optionally) the
// per-layer detail, schedule, placement, and a CSV trace.
//
// Usage:
//
//	inca-sim -model VGG16 -arch inca -phase training -batch 64 -layers
//	inca-sim -model MobileNetV2 -arch baseline -timeline
//	inca-sim -model ResNet18 -arch gpu
//	inca-sim -model LeNet5 -placement -csv trace.csv
//	inca-sim -model VGG16 -config my-accelerator.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/inca-arch/inca"
	"github.com/inca-arch/inca/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("inca-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "ResNet18", "network: VGG16, VGG19, ResNet18, ResNet50, MobileNetV2, MNasNet, AlexNet, VGG16-CIFAR, ResNet18-CIFAR, LeNet5")
	archName := fs.String("arch", "inca", "architecture: inca, baseline, gpu")
	phaseName := fs.String("phase", "inference", "phase: inference, training")
	batch := fs.Int("batch", 64, "batch size")
	layers := fs.Bool("layers", false, "print per-layer results")
	timeline := fs.Bool("timeline", false, "print an ASCII Gantt of the layer schedule")
	placement := fs.Bool("placement", false, "print the layer-to-macro placement (inca arch only)")
	csvPath := fs.String("csv", "", "write the per-layer trace to this CSV file")
	configPath := fs.String("config", "", "load a custom accelerator configuration (JSON) instead of -arch defaults")
	summary := fs.Bool("summary", false, "print the network's layer table and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	net, err := inca.Model(*model)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *summary {
		fmt.Fprint(stdout, net.Summary())
		return 0
	}

	phase := inca.Inference
	switch *phaseName {
	case "inference":
	case "training":
		phase = inca.Training
	default:
		fmt.Fprintf(stderr, "unknown phase %q\n", *phaseName)
		return 2
	}

	var m inca.Machine
	var cfg inca.Config
	switch *archName {
	case "inca":
		cfg = inca.DefaultINCA()
	case "baseline":
		cfg = inca.DefaultBaseline()
	case "gpu":
		m = inca.NewGPU()
	default:
		fmt.Fprintf(stderr, "unknown arch %q\n", *archName)
		return 2
	}
	if *configPath != "" {
		loaded, err := inca.LoadConfig(*configPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		cfg = loaded
	}
	if m == nil {
		cfg.BatchSize = *batch
		if *archName == "baseline" {
			m = inca.NewBaseline(cfg)
		} else {
			m = inca.NewINCA(cfg)
		}
	}

	rep := m.Simulate(net, phase)
	fmt.Fprintln(stdout, rep)
	fmt.Fprintf(stdout, "  energy/image: %s\n", metrics.FormatEnergy(rep.EnergyPerImage()))
	fmt.Fprintf(stdout, "  throughput:   %.1f images/s\n", rep.Throughput())
	fmt.Fprintf(stdout, "  breakdown:    %s\n", rep.Total.Energy)

	if *layers {
		fmt.Fprintln(stdout, "  per-layer:")
		for _, lr := range rep.Layers {
			fmt.Fprintf(stdout, "    %-28s %-10s %-10s util %.2f\n",
				lr.Layer.String(),
				metrics.FormatEnergy(lr.Result.Energy.Total()),
				metrics.FormatTime(lr.Result.Latency),
				lr.Utilization)
		}
	}
	if *timeline {
		fmt.Fprintln(stdout, "  schedule:")
		fmt.Fprint(stdout, inca.Timeline(rep, 6, 100))
	}
	if *placement && *archName == "inca" {
		fmt.Fprint(stdout, inca.PlaceNetwork(cfg, net))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		if err := rep.WriteCSV(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "  trace written to %s\n", *csvPath)
	}
	return 0
}
