// Command inca-sim runs accelerator simulations on the parallel sweep
// engine. A single (model, arch, phase) cell prints the detailed
// energy/latency report with its component breakdown and (optionally)
// the per-layer detail, schedule, placement, and a CSV trace; comma
// lists on -model / -arch / -phase expand into a cross-product sweep
// rendered as one summary table.
//
// Usage:
//
//	inca-sim -model VGG16 -arch inca -phase training -batch 64 -layers
//	inca-sim -model MobileNetV2 -arch baseline -timeline
//	inca-sim -model ResNet18 -arch gpu
//	inca-sim -model LeNet5 -arch os
//	inca-sim -model LeNet5 -placement -csv trace.csv
//	inca-sim -model VGG16 -config my-accelerator.json
//	inca-sim -model VGG16,ResNet18 -arch inca,baseline,gpu,os -phase inference,training -jobs 8
//	inca-sim -model VGG16 -arch inca -timeout 30s
//	inca-sim -model LeNet5 -tune
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/inca-arch/inca"
	"github.com/inca-arch/inca/internal/arch"
	"github.com/inca-arch/inca/internal/cli"
	"github.com/inca-arch/inca/internal/metrics"
	"github.com/inca-arch/inca/internal/report"
)

func main() {
	// Ctrl-C / SIGTERM cancels the sweep engine cleanly: in-flight cells
	// finish, unexecuted ones carry the context error, and the command
	// exits through its normal error path instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("inca-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "ResNet18", "network (comma list sweeps): VGG16, VGG19, ResNet18, ResNet50, MobileNetV2, MNasNet, AlexNet, VGG16-CIFAR, ResNet18-CIFAR, LeNet5")
	archNames := fs.String("arch", "inca", "architecture (comma list sweeps): inca, baseline, os, gpu, or any registered dataflow ID")
	tuneFlag := fs.Bool("tune", false, "run the mapping auto-tuner over -arch dataflows and print the Pareto frontier")
	phaseNames := fs.String("phase", "inference", "phase (comma list sweeps): inference, training")
	batch := fs.Int("batch", 64, "batch size")
	jobs := fs.Int("jobs", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	layers := fs.Bool("layers", false, "print per-layer results (single cell only)")
	timeline := fs.Bool("timeline", false, "print an ASCII Gantt of the layer schedule (single cell only)")
	placement := fs.Bool("placement", false, "print the layer-to-macro placement (single cell, inca arch only)")
	csvPath := fs.String("csv", "", "write the per-layer trace to this CSV file (single cell only)")
	configPath := fs.String("config", "", "load a custom accelerator configuration (JSON) instead of -arch defaults")
	summary := fs.Bool("summary", false, "print the network's layer table and exit")
	logLevel := cli.LogLevelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger, err := cli.NewLogger(stderr, *logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "inca-sim:", err)
		return 2
	}
	logger.Debug("parsed flags", "model", *model, "arch", *archNames, "phase", *phaseNames, "batch", *batch)

	var nets []*inca.Network
	for _, name := range splitList(*model) {
		net, err := inca.Model(name)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		nets = append(nets, net)
	}

	if *summary {
		for _, net := range nets {
			fmt.Fprint(stdout, net.Summary())
		}
		return 0
	}

	var phases []inca.Phase
	for _, name := range splitList(*phaseNames) {
		switch name {
		case "inference":
			phases = append(phases, inca.Inference)
		case "training":
			phases = append(phases, inca.Training)
		default:
			fmt.Fprintf(stderr, "unknown phase %q\n", name)
			return 2
		}
	}

	var custom *inca.Config
	if *configPath != "" {
		loaded, err := inca.LoadConfig(*configPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		custom = &loaded
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *tuneFlag {
		// -arch narrows the tuner's dataflow set only when set explicitly;
		// by default the search covers every registered backend.
		var dataflows []string
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "arch" {
				dataflows = splitList(*archNames)
			}
		})
		opt := inca.TuneOptions{Dataflows: dataflows, Phases: phases, Workers: *jobs}
		for _, net := range nets {
			fronts, err := inca.TuneSearch(ctx, net, opt)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			for _, f := range fronts {
				fmt.Fprintln(stdout, f)
			}
		}
		return 0
	}

	var archs []inca.SweepArch
	for _, name := range splitList(*archNames) {
		var cfg inca.Config
		switch name {
		case "inca":
			cfg = inca.DefaultINCA()
		case "baseline":
			cfg = inca.DefaultBaseline()
		case "os":
			cfg = inca.DefaultOutStationary()
		case "gpu":
			archs = append(archs, inca.SweepGPU())
			continue
		default:
			a, err := inca.SweepDataflow(name)
			if err != nil {
				fmt.Fprintf(stderr, "unknown arch %q\n", name)
				return 2
			}
			archs = append(archs, a)
			continue
		}
		if custom != nil {
			cfg = *custom
		}
		cfg.BatchSize = *batch
		archs = append(archs, inca.SweepConfig(cfg))
	}

	plan := inca.SweepPlan{Archs: archs, Networks: nets, Phases: phases}
	results, err := inca.RunSweep(ctx, plan, inca.SweepOptions{Workers: *jobs})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(stderr, "%s %s %s: %v\n", r.Cell.Arch.Name, r.Cell.Network.Name, r.Cell.Phase, r.Err)
			return 1
		}
	}

	if len(results) == 1 {
		return printDetail(results[0], *layers, *timeline, *placement, *csvPath, stdout, stderr)
	}
	return printSweep(results, stdout)
}

// printDetail renders the classic single-simulation report.
func printDetail(res inca.SweepResult, layers, timeline, placement bool, csvPath string, stdout, stderr io.Writer) int {
	rep := res.Report
	fmt.Fprintln(stdout, rep)
	if perImage, err := rep.EnergyPerImage(); err == nil {
		fmt.Fprintf(stdout, "  energy/image: %s\n", metrics.FormatEnergy(perImage))
	}
	fmt.Fprintf(stdout, "  throughput:   %.1f images/s\n", rep.Throughput())
	fmt.Fprintf(stdout, "  breakdown:    %s\n", rep.Total.Energy)

	if layers {
		fmt.Fprintln(stdout, "  per-layer:")
		for _, lr := range rep.Layers {
			fmt.Fprintf(stdout, "    %-28s %-10s %-10s util %.2f\n",
				lr.Layer.String(),
				metrics.FormatEnergy(lr.Result.Energy.Total()),
				metrics.FormatTime(lr.Result.Latency),
				lr.Utilization)
		}
	}
	if timeline {
		gantt, err := inca.Timeline(rep, 6, 100)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, "  schedule:")
		fmt.Fprint(stdout, gantt)
	}
	if placement && !res.Cell.Arch.Fixed && res.Cell.Config.Dataflow == arch.InputStationary {
		fmt.Fprint(stdout, inca.PlaceNetwork(res.Cell.Config, res.Cell.Network))
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		if err := rep.WriteCSV(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "  trace written to %s\n", csvPath)
	}
	return 0
}

// printSweep renders a cross-product run as one table, in plan order.
func printSweep(results []inca.SweepResult, stdout io.Writer) int {
	t := report.New("Sweep: "+fmt.Sprint(len(results))+" cells",
		"arch", "network", "phase", "energy (J)", "latency (s)", "J/image", "images/s")
	cached := 0
	for _, r := range results {
		if r.Cached {
			cached++
		}
		perImage, _ := r.Report.EnergyPerImage()
		t.AddRow(r.Cell.Arch.Name, r.Cell.Network.Name, r.Cell.Phase.String(),
			r.Report.Total.Energy.Total(), r.Report.Total.Latency,
			perImage, r.Report.Throughput())
	}
	fmt.Fprint(stdout, t.String())
	fmt.Fprintf(stdout, "cells: %d (%d served from cache)\n", len(results), cached)
	return 0
}

// splitList parses a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
