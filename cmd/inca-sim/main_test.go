package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/inca-arch/inca"
)

func TestBasicRun(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(context.Background(), []string{"-model", "LeNet5", "-arch", "inca", "-layers", "-timeline"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"INCA LeNet5", "energy/image", "per-layer", "makespan"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestPlacementAndCSV(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "trace.csv")
	var out, errOut bytes.Buffer
	code := run(context.Background(), []string{"-model", "LeNet5", "-placement", "-csv", csvPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "placement:") {
		t.Error("missing placement summary")
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "TOTAL") {
		t.Error("CSV missing TOTAL row")
	}
}

func TestGPUAndTraining(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-model", "ResNet18", "-arch", "gpu", "-phase", "training"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "TitanRTX") {
		t.Error("missing GPU report")
	}
}

func TestCustomConfig(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "cfg.json")
	cfg := inca.DefaultINCA()
	cfg.Name = "MyINCA"
	if err := cfg.Save(cfgPath); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-model", "LeNet5", "-config", cfgPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "MyINCA") {
		t.Errorf("custom config name not used:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-model", "NoSuchNet"},
		{"-arch", "tpu"},
		{"-phase", "sideways"},
		{"-config", "/nonexistent/cfg.json"},
		{"-bogus"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(context.Background(), args, &out, &errOut); code == 0 {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestSweepMode(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-model", "LeNet5,VGG16-CIFAR", "-arch", "inca,baseline,gpu",
		"-phase", "inference,training", "-jobs", "4"}
	if code := run(context.Background(), args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "Sweep: 12 cells") {
		t.Fatalf("missing sweep header:\n%s", s)
	}
	for _, want := range []string{"INCA", "WS-Baseline", "TitanRTX", "LeNet5", "VGG16-CIFAR", "cells: 12"} {
		if !strings.Contains(s, want) {
			t.Errorf("sweep table missing %q", want)
		}
	}
	// GPU ignores batch/config, so its two nets x two phases dedupe per
	// (net, phase); nothing repeats here, so no cache hits expected —
	// but the summary line must always be present and well-formed.
	if !strings.Contains(s, "served from cache)") {
		t.Fatalf("missing cache summary line:\n%s", s)
	}

	// Same sweep serially must print the identical table.
	var serial bytes.Buffer
	if code := run(context.Background(), append(args[:len(args)-2], "-jobs", "1"), &serial, &errOut); code != 0 {
		t.Fatalf("serial exit %d: %s", code, errOut.String())
	}
	if serial.String() != s {
		t.Fatalf("-jobs changed sweep output:\nserial:\n%s\nparallel:\n%s", serial.String(), s)
	}
}

func TestSweepTimeout(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-model", "LeNet5", "-arch", "inca,baseline",
		"-timeout", "1ns"}, &out, &errOut); code != 1 {
		t.Fatalf("expired deadline exited %d, want 1 (stderr %q)", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run(context.Background(), []string{"-model", "LeNet5", "-arch", "inca",
		"-timeout", "1m"}, &out, &errOut); code != 0 {
		t.Fatalf("generous timeout exited %d: %s", code, errOut.String())
	}
}

func TestSummaryFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-model", "AlexNet", "-summary"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "AlexNet") || !strings.Contains(out.String(), "total:") {
		t.Fatalf("summary output:\n%s", out.String())
	}
}
