package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// bootServer starts run() with the given extra flags and returns the
// resolved base URL plus a shutdown function that cancels the context
// and waits for a clean drain.
func bootServer(t *testing.T, extra ...string) (base string, shutdown func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr syncBuffer
	exit := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-quiet"}, extra...)
	go func() { exit <- run(ctx, args, &stdout, &stderr) }()
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listeningRE.FindStringSubmatch(stdout.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("no boot handshake; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	return base, func() {
		cancel()
		select {
		case code := <-exit:
			if code != 0 {
				t.Fatalf("exit code = %d; stderr=%q", code, stderr.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server did not drain after cancellation")
		}
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %.300s", url, resp.StatusCode, body)
	}
	return body
}

func postSweep(t *testing.T, base string) []byte {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweep", "application/json",
		strings.NewReader(`{"archs":["INCA","WS-Baseline"],"models":["LeNet5","VGG16-CIFAR"],"phases":["inference","training"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d: %.300s", resp.StatusCode, body)
	}
	return body
}

// cellPayload is the simulation-derived portion of a sweep cell — the
// bytes that must replay identically from disk. Cache metadata (the
// per-cell cached flag, the aggregate counters) legitimately differs
// between a cold and a warm run and is excluded.
type cellPayload struct {
	Arch            string  `json:"arch"`
	Override        string  `json:"override"`
	Network         string  `json:"network"`
	Phase           string  `json:"phase"`
	Error           string  `json:"error"`
	EnergyJ         float64 `json:"energy_j"`
	LatencyS        float64 `json:"latency_s"`
	EnergyPerImageJ float64 `json:"energy_per_image_j"`
	ThroughputIPS   float64 `json:"throughput_ips"`
	Utilization     float64 `json:"utilization"`
}

func cellPayloads(t *testing.T, sweepBody []byte) []byte {
	t.Helper()
	var resp struct {
		Cells []cellPayload `json:"cells"`
	}
	if err := json.Unmarshal(sweepBody, &resp); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(resp.Cells)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

type storeStatsBody struct {
	Store struct {
		Entries     int   `json:"entries"`
		TornRecords int64 `json:"torn_records"`
	} `json:"store"`
	DiskHits int64 `json:"disk_hits"`
}

func storeStats(t *testing.T, base string) storeStatsBody {
	t.Helper()
	var out storeStatsBody
	if err := json.Unmarshal(getBody(t, base+"/v1/store/stats"), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestKillAndRestartWarmStart is the acceptance e2e: a sweep through
// inca-serve with -store-dir, a full process stop, a fresh boot on the
// same directory, and the re-issued sweep — responses byte-identical,
// disk_hits equal to the cell count, zero re-simulations. Then a
// segment truncated mid-record still opens and serves the surviving
// prefix.
func TestKillAndRestartWarmStart(t *testing.T) {
	dir := t.TempDir()

	base, shutdown := bootServer(t, "-store-dir", dir)
	first := postSweep(t, base)
	stats := storeStats(t, base)
	if stats.Store.Entries != 8 || stats.DiskHits != 0 {
		t.Fatalf("cold boot stats = %+v, want 8 entries, 0 disk hits", stats)
	}
	shutdown() // the "kill": full graceful stop, store closed

	// Fresh process, same directory: the sweep must replay from disk.
	base2, shutdown2 := bootServer(t, "-store-dir", dir)
	second := postSweep(t, base2)
	if got, want := cellPayloads(t, second), cellPayloads(t, first); !bytes.Equal(got, want) {
		t.Fatalf("restarted sweep not byte-identical:\n%.300s\n%.300s", want, got)
	}
	stats = storeStats(t, base2)
	if stats.DiskHits != 8 {
		t.Fatalf("disk_hits = %d, want 8 (every cell from disk)", stats.DiskHits)
	}
	var metrics struct {
		Cache struct {
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(getBody(t, base2+"/metrics"), &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Cache.Misses != 0 {
		t.Fatalf("warm restart re-simulated %d cells, want 0", metrics.Cache.Misses)
	}
	shutdown2()

	// Crash-damage the tail: truncate the last segment mid-record. The
	// next boot must still come up and serve the surviving prefix.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files: %v %v", segs, err)
	}
	tail := segs[len(segs)-1]
	fi, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(tail, fi.Size()-32); err != nil {
		t.Fatal(err)
	}
	base3, shutdown3 := bootServer(t, "-store-dir", dir)
	defer shutdown3()
	stats = storeStats(t, base3)
	if stats.Store.Entries != 7 || stats.Store.TornRecords != 1 {
		t.Fatalf("after torn tail: %+v, want 7 surviving entries and 1 torn record", stats)
	}
	// The damaged cell re-simulates, the other seven come from disk.
	postSweep(t, base3)
	stats = storeStats(t, base3)
	if stats.DiskHits != 7 || stats.Store.Entries != 8 {
		t.Fatalf("post-repair sweep stats = %+v, want 7 disk hits and a re-persisted 8th entry", stats)
	}
}
