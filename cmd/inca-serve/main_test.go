package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer: run writes the handshake
// from its own goroutine while the test polls for it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listeningRE = regexp.MustCompile(`inca-serve listening on (http://[0-9.]+:[0-9]+)`)

// TestServeLifecycle boots the server on an ephemeral port, exercises
// /healthz and one simulate cell, then cancels the context (the SIGINT
// path) and asserts a clean drained exit.
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quiet"}, &stdout, &stderr)
	}()

	// Wait for the boot handshake and extract the resolved address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listeningRE.FindStringSubmatch(stdout.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no boot handshake; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/simulate", "application/json",
		strings.NewReader(`{"arch":"inca","model":"LeNet5","phase":"inference"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"arch":"INCA"`)) {
		t.Fatalf("simulate = %d %.200s", resp.StatusCode, body)
	}

	cancel() // stand-in for SIGINT/SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code = %d; stderr=%q", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after cancellation")
	}
	if !strings.Contains(stdout.String(), "drained") {
		t.Fatalf("missing drain message; stdout=%q", stdout.String())
	}
}

// TestChaosFlagArmsInjection boots with -chaos-seed and a certain fault
// probability, asserts the loud warning and that requests actually fail,
// then drains cleanly.
func TestChaosFlagArmsInjection(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, []string{"-addr", "127.0.0.1:0",
			"-chaos-seed", "42", "-chaos-prob", "1"}, &stdout, &stderr)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listeningRE.FindStringSubmatch(stdout.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no boot handshake; stderr=%q", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(stderr.String(), "chaos mode armed") {
		t.Fatalf("no chaos warning in logs: %q", stderr.String())
	}

	resp, err := http.Post(base+"/v1/simulate", "application/json",
		strings.NewReader(`{"arch":"inca","model":"LeNet5","phase":"inference"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("certain injected fault answered %d, want 500", resp.StatusCode)
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code = %d; stderr=%q", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("chaotic server did not drain")
	}
}

// TestBadFlags asserts flag errors exit with the conventional status 2.
func TestBadFlags(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run(context.Background(), []string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestBadListenAddr asserts an unusable address is a startup error.
func TestBadListenAddr(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr=%q", code, stderr.String())
	}
}
