// Command inca-serve runs the HTTP simulation service: the paper's
// design-space queries (single cells, declarative sweeps, suite
// experiments) behind a production JSON API with bounded admission,
// per-request deadlines, structured access logs, and graceful shutdown
// on SIGINT/SIGTERM.
//
// Usage:
//
//	inca-serve -addr :8321
//	inca-serve -inflight 8 -queue 128 -request-timeout 30s
//	inca-serve -kernels 4          # cap the process-wide tensor budget
//	inca-serve -store-dir /var/lib/inca   # persist results; restarts warm-start from disk
//	inca-serve -job-dir /var/lib/inca-jobs   # journal async jobs; restarts resume them
//	inca-serve -trace-jsonl t.jsonl -pprof   # tracing + profiling endpoints
//	inca-serve -chaos-seed 42      # opt-in fault injection (never in production)
//	inca-serve -peers http://10.0.0.2:8321,http://10.0.0.3:8321   # cluster coordinator
//	inca-serve -shard-id s1 -warm-from http://10.0.0.2:8321       # shard, warm-started
//
// With -peers the node becomes a cluster coordinator: /v1/sweep cells
// are consistent-hashed across the peers by cache key, dispatched in
// parallel, and merged back in plan order; a peer lost mid-sweep has
// its cells rehashed onto the survivors, and /healthz/ready reports
// per-peer health. Identical concurrent requests coalesce into one
// execution unless -coalesce=false.
//
// Endpoints:
//
//	POST /v1/simulate            one (config, network, phase) cell
//	POST /v1/sweep               declarative plan on the parallel engine
//	POST /v1/shard/sweep         explicit cell list (cluster coordinators call this)
//	POST /v1/jobs                submit a sweep as a durable async job (202 + job id)
//	GET  /v1/jobs                list jobs, submission order
//	GET  /v1/jobs/{id}           one job's state and progress
//	GET  /v1/jobs/{id}/result    a succeeded job's result (JSON or CSV)
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET  /v1/models              the network zoo
//	GET  /v1/experiments         experiment index
//	GET  /v1/experiments/{id}    one paper table/figure
//	GET  /v1/trace               trace index: one summary row per retained trace
//	GET  /v1/trace/{id}          one trace, federated across cluster peers
//	GET  /v1/shard/trace/{id}    this node's spans for one trace (coordinators call this)
//	GET  /v1/usage               per-request cost rollup, keyed model x dataflow
//	GET  /v1/store/stats         persistent result-store counters (with -store-dir)
//	GET  /v1/store/export        result corpus as JSON lines
//	POST /v1/store/import        merge an exported corpus
//	GET  /debug/pprof/           runtime profiles (only with -pprof)
//	GET  /healthz                liveness (also /healthz/live; ?format=json adds build info)
//	GET  /healthz/ready          readiness — 503 once draining begins; "degraded" on SLO fast burn
//	GET  /metrics                counters, gauges, cache stats (JSON or Prometheus)
//
// With -slo-p99 (and optionally -slo-err) the server tracks multi-window
// burn rates against the latency and error-budget objectives; burn
// rates ride /metrics and /healthz/ready flips to "degraded" (still
// 200) on a fast burn, before hard failure. POST /v1/simulate,
// POST /v1/sweep, and GET /v1/jobs/{id} accept ?cost=1 (or
// X-Inca-Cost: 1) to append a per-request cost-attribution block;
// without the flag bodies are byte-identical to previous releases.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/inca-arch/inca"
	"github.com/inca-arch/inca/internal/cli"
	"github.com/inca-arch/inca/internal/client"
	"github.com/inca-arch/inca/internal/cluster"
	"github.com/inca-arch/inca/internal/serve"
	"github.com/inca-arch/inca/internal/sweep"
)

func main() {
	// SIGINT/SIGTERM triggers graceful shutdown: the listener closes and
	// in-flight requests drain before the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("inca-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8321", "listen address")
	inflight := fs.Int("inflight", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "admission queue depth beyond -inflight; overflow answers 503")
	reqTimeout := fs.Duration("request-timeout", 60*time.Second, "per-request deadline propagated into the sweep engine")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 503 responses")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown drain budget for in-flight requests")
	readinessGrace := fs.Duration("readiness-grace", 0, "keep serving after /healthz/ready flips 503 so load balancers drift away first")
	maxBody := fs.Int64("max-body", 1<<20, "request-body byte cap; overflow answers 413")
	kernels := fs.Int("kernels", 0, "process-wide tensor-kernel worker budget (0 = GOMAXPROCS tracking)")
	storeDir := fs.String("store-dir", "", "persist simulation results in this directory for warm restarts (empty = memory-only)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "result-store size cap in bytes; overflow compacts oldest-first (0 = 256 MiB)")
	storeTTL := fs.Duration("store-ttl", 0, "result-store record time-to-live; expired records evict at compaction (0 = keep forever)")
	jobDir := fs.String("job-dir", "", "journal async jobs in this directory so restarts resume them (empty = jobs are memory-only)")
	jobRunners := fs.Int("job-runners", 0, "async-job runner pool size (0 = 2)")
	jobQueue := fs.Int("job-queue", 0, "async-job queue depth beyond the runner pool; overflow answers 503 (0 = 64)")
	quiet := fs.Bool("quiet", false, "suppress all logs (same as -log-level off)")
	logLevel := cli.LogLevelFlag(fs)
	traceJSONL := fs.String("trace-jsonl", "", "enable tracing and append every completed span to this JSONL file")
	traceRing := fs.Int("trace-ring", 0, "enable tracing with an in-memory ring of this many spans (0 = default size when tracing is on)")
	pprofOn := fs.Bool("pprof", false, "mount GET /debug/pprof/ runtime profiling endpoints")
	chaosSeed := fs.Int64("chaos-seed", 0, "arm the fault injector with this seed (0 = off; never use in production)")
	chaosProb := fs.Float64("chaos-prob", 0.1, "per-request probability of each armed chaos fault")
	chaosLatency := fs.Duration("chaos-latency", 50*time.Millisecond, "injected latency for the chaos latency fault")
	chaosCellDelay := fs.Duration("chaos-cell-delay", 0, "inject this latency into every sweep cell (needs -chaos-seed; 0 = off)")
	peers := fs.String("peers", "", "comma-separated shard base URLs; non-empty makes this node a cluster coordinator")
	shardID := fs.String("shard-id", "", "this node's name in shard responses and readiness bodies")
	coalesceOn := fs.Bool("coalesce", true, "coalesce identical concurrent /v1/simulate and /v1/sweep requests into one execution")
	coalesceWait := fs.Duration("coalesce-wait", 250*time.Millisecond, "coalescing window, measured from a flight's start")
	warmFrom := fs.String("warm-from", "", "peer base URL to pull the result corpus from at boot (needs -store-dir)")
	retryJitterSeed := fs.Int64("retry-jitter-seed", 1, "seed for Retry-After jitter on 503 responses (0 = exact hints, no jitter)")
	sloP99 := fs.Duration("slo-p99", 0, "latency objective: the p99 target requests are measured against (0 = SLO tracking off)")
	sloErr := fs.Float64("slo-err", 0.001, "error-budget objective: tolerated 5xx fraction for burn-rate math (needs -slo-p99)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *warmFrom != "" && *storeDir == "" {
		fmt.Fprintln(stderr, "inca-serve: -warm-from needs -store-dir (the corpus lands in the persistent store)")
		return 2
	}
	if *kernels > 0 {
		inca.SetKernelParallelism(*kernels)
	}
	// The kernel-stats hook is free when idle, so the server always
	// installs one: /metrics reports kernel occupancy out of the box.
	inca.InstallKernelStats()

	level := *logLevel
	if *quiet {
		level = "off"
	}
	logger, err := cli.NewLogger(stderr, level)
	if err != nil {
		fmt.Fprintln(stderr, "inca-serve:", err)
		return 2
	}

	// Tracing is on when either trace flag is given; the ring always
	// backs GET /v1/trace/{id}, the JSONL file additionally persists
	// every span for offline analysis.
	var tracer *inca.Tracer
	var traceFile *os.File
	if *traceJSONL != "" || *traceRing > 0 {
		opts := []inca.TracerOption{inca.WithTraceRing(*traceRing)}
		if *traceJSONL != "" {
			traceFile, err = os.OpenFile(*traceJSONL, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(stderr, "inca-serve:", err)
				return 1
			}
			defer traceFile.Close()
			opts = append(opts, inca.WithTraceJSONL(traceFile))
		}
		tracer = inca.NewTracer(opts...)
		logger.Info("tracing enabled", "jsonl", *traceJSONL, "ring", *traceRing)
	}

	// With -store-dir the cache gets a persistent second tier: the index
	// rebuild at open is the warm start — every previously simulated
	// cell serves from disk instead of recomputing.
	var st *inca.ResultStore
	if *storeDir != "" {
		st, err = inca.OpenResultStore(*storeDir, inca.ResultStoreOptions{
			MaxBytes: *storeMaxBytes,
			TTL:      *storeTTL,
		})
		if err != nil {
			fmt.Fprintln(stderr, "inca-serve:", err)
			return 1
		}
		defer st.Close()
		stats := st.Stats()
		logger.Info("result store open",
			"dir", stats.Dir, "entries", stats.Entries,
			"segments", stats.Segments, "bytes", stats.Bytes,
			"torn_records", stats.TornRecords)
		// Cluster warm start: pull a sibling's exported corpus into the
		// local store before serving, so a fresh shard answers its ring
		// share from disk instead of recomputing the cluster's history.
		// A failed pull degrades to a cold start — the peer may simply
		// not be up yet.
		if *warmFrom != "" {
			if err := warmStart(ctx, st, *warmFrom, logger); err != nil {
				logger.Warn("warm start failed, starting cold", "from", *warmFrom, "err", err.Error())
			}
		}
	}

	// The job manager is always on — /v1/jobs works out of the box with
	// memory-only state; -job-dir adds the journal that makes jobs
	// survive crashes. It opens after the store so a resumed job's
	// re-execution finds the completed cells already on disk, and its
	// deferred Close runs before the store's (LIFO), so runners stop
	// writing before the store goes away.
	jm, err := inca.OpenJobManager(*jobDir, inca.JobManagerOptions{
		Runners:    *jobRunners,
		QueueDepth: *jobQueue,
	})
	if err != nil {
		fmt.Fprintln(stderr, "inca-serve:", err)
		return 1
	}
	defer jm.Close()
	if *jobDir != "" {
		js := jm.Stats()
		logger.Info("job journal open", "dir", *jobDir,
			"jobs", js.Jobs, "torn_records", js.TornRecords)
	}

	// Chaos mode is strictly opt-in: without -chaos-seed the injector is
	// nil and the fault paths cost nothing.
	var inj *inca.FaultInjector
	if *chaosSeed != 0 {
		inj = inca.NewFaultInjector(*chaosSeed)
		// -chaos-prob 0 leaves the random request faults unarmed (the
		// fault package reads a zero Prob as "always", which is never what
		// a smoke script armed only for -chaos-cell-delay wants).
		if *chaosProb > 0 {
			inj.Add(inca.FaultRule{Site: inca.ChaosSiteRequest, Kind: inca.FaultError, Prob: *chaosProb})
			inj.Add(inca.FaultRule{Site: inca.ChaosSiteExec, Kind: inca.FaultLatency, Prob: *chaosProb, Delay: *chaosLatency})
		}
		if *chaosCellDelay > 0 {
			// Deterministic per-cell drag (Prob 1) at the sweep engine's
			// cell site: the crash-resume smoke test uses it to widen the
			// window between checkpoints so a kill -9 lands mid-job.
			inj.Add(inca.FaultRule{Site: sweep.SpanCell + "/*", Kind: inca.FaultLatency, Prob: 1, Delay: *chaosCellDelay})
		}
		logger.Warn("chaos mode armed: requests will randomly fail",
			"seed", *chaosSeed, "prob", *chaosProb, "latency", chaosLatency.String())
	}

	// The cache is built up front (instead of letting the service default
	// one) so a cluster coordinator's local-fallback engine shares it.
	cache := sweep.NewCache()
	var sharder serve.Sharder
	if *peers != "" {
		peerList := splitPeers(*peers)
		co, err := cluster.New(cluster.Options{
			Peers: peerList,
			// The armed breaker keeps a dead shard from eating a full
			// retry budget on every readiness probe and dispatch: after 8
			// consecutive transient failures its client fails fast until
			// the cooldown's half-open probe finds the peer again.
			Client: client.Options{Logger: logger, BreakerThreshold: 8},
			Cache:  cache,
			Logger: logger,
		})
		if err != nil {
			fmt.Fprintln(stderr, "inca-serve:", err)
			return 2
		}
		sharder = co
		logger.Info("cluster coordinator mode", "peers", len(peerList))
	}

	// SLO tracking is armed only by -slo-p99: the error-budget default
	// alone must not flip readiness into its structured body, which
	// would surprise plain-text health probes.
	var sloOpt serve.SLOOptions
	if *sloP99 > 0 {
		sloOpt = serve.SLOOptions{TargetP99: *sloP99, ErrorBudget: *sloErr}
		logger.Info("slo tracking enabled", "p99", sloP99.String(), "error_budget", *sloErr)
	}

	svc := inca.NewService(inca.ServiceOptions{
		MaxInflight:    *inflight,
		QueueDepth:     *queue,
		RequestTimeout: *reqTimeout,
		RetryAfter:     *retryAfter,
		DrainTimeout:   *drain,
		ReadinessGrace: *readinessGrace,
		MaxBodyBytes:   *maxBody,
		Cache:          cache,
		Store:          st,
		Logger:         logger,
		Inject:         inj,
		Tracer:         tracer,
		EnablePprof:    *pprofOn,
		Coalesce: serve.CoalesceOptions{
			Enabled: *coalesceOn,
			MaxWait: *coalesceWait,
		},
		Jobs:            jm,
		Sharder:         sharder,
		ShardID:         *shardID,
		RetryJitterSeed: *retryJitterSeed,
		SLO:             sloOpt,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// The resolved address line is the boot handshake: scripts (and the
	// serve-smoke target) wait for it before sending traffic.
	fmt.Fprintf(stdout, "inca-serve listening on http://%s\n", ln.Addr())
	if err := svc.Serve(ctx, ln); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintln(stdout, "inca-serve drained, bye")
	return 0
}

// splitPeers parses the -peers flag: comma-separated base URLs, blanks
// dropped.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// warmStart pulls the full result corpus from a peer and merges it into
// the local store.
func warmStart(ctx context.Context, st *inca.ResultStore, from string, logger interface {
	Info(msg string, args ...any)
}) error {
	c, err := client.New(from, client.Options{})
	if err != nil {
		return err
	}
	pctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	corpus, err := c.StoreExport(pctx)
	if err != nil {
		return err
	}
	res, err := st.Import(bytes.NewReader(corpus), 0)
	if err != nil {
		return err
	}
	logger.Info("warm start complete", "from", from,
		"added", res.Added, "skipped", res.Skipped, "rejected", res.Rejected)
	return nil
}
