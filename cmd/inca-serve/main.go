// Command inca-serve runs the HTTP simulation service: the paper's
// design-space queries (single cells, declarative sweeps, suite
// experiments) behind a production JSON API with bounded admission,
// per-request deadlines, structured access logs, and graceful shutdown
// on SIGINT/SIGTERM.
//
// Usage:
//
//	inca-serve -addr :8321
//	inca-serve -inflight 8 -queue 128 -request-timeout 30s
//	inca-serve -kernels 4          # cap the process-wide tensor budget
//	inca-serve -store-dir /var/lib/inca   # persist results; restarts warm-start from disk
//	inca-serve -trace-jsonl t.jsonl -pprof   # tracing + profiling endpoints
//	inca-serve -chaos-seed 42      # opt-in fault injection (never in production)
//
// Endpoints:
//
//	POST /v1/simulate            one (config, network, phase) cell
//	POST /v1/sweep               declarative plan on the parallel engine
//	GET  /v1/models              the network zoo
//	GET  /v1/experiments         experiment index
//	GET  /v1/experiments/{id}    one paper table/figure
//	GET  /v1/trace/{id}          one trace from the in-memory ring
//	GET  /v1/store/stats         persistent result-store counters (with -store-dir)
//	GET  /v1/store/export        result corpus as JSON lines
//	POST /v1/store/import        merge an exported corpus
//	GET  /debug/pprof/           runtime profiles (only with -pprof)
//	GET  /healthz                liveness (also /healthz/live)
//	GET  /healthz/ready          readiness — 503 once draining begins
//	GET  /metrics                counters, gauges, cache stats (JSON or Prometheus)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/inca-arch/inca"
	"github.com/inca-arch/inca/internal/cli"
)

func main() {
	// SIGINT/SIGTERM triggers graceful shutdown: the listener closes and
	// in-flight requests drain before the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("inca-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8321", "listen address")
	inflight := fs.Int("inflight", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "admission queue depth beyond -inflight; overflow answers 503")
	reqTimeout := fs.Duration("request-timeout", 60*time.Second, "per-request deadline propagated into the sweep engine")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 503 responses")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown drain budget for in-flight requests")
	readinessGrace := fs.Duration("readiness-grace", 0, "keep serving after /healthz/ready flips 503 so load balancers drift away first")
	maxBody := fs.Int64("max-body", 1<<20, "request-body byte cap; overflow answers 413")
	kernels := fs.Int("kernels", 0, "process-wide tensor-kernel worker budget (0 = GOMAXPROCS tracking)")
	storeDir := fs.String("store-dir", "", "persist simulation results in this directory for warm restarts (empty = memory-only)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "result-store size cap in bytes; overflow compacts oldest-first (0 = 256 MiB)")
	storeTTL := fs.Duration("store-ttl", 0, "result-store record time-to-live; expired records evict at compaction (0 = keep forever)")
	quiet := fs.Bool("quiet", false, "suppress all logs (same as -log-level off)")
	logLevel := cli.LogLevelFlag(fs)
	traceJSONL := fs.String("trace-jsonl", "", "enable tracing and append every completed span to this JSONL file")
	traceRing := fs.Int("trace-ring", 0, "enable tracing with an in-memory ring of this many spans (0 = default size when tracing is on)")
	pprofOn := fs.Bool("pprof", false, "mount GET /debug/pprof/ runtime profiling endpoints")
	chaosSeed := fs.Int64("chaos-seed", 0, "arm the fault injector with this seed (0 = off; never use in production)")
	chaosProb := fs.Float64("chaos-prob", 0.1, "per-request probability of each armed chaos fault")
	chaosLatency := fs.Duration("chaos-latency", 50*time.Millisecond, "injected latency for the chaos latency fault")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *kernels > 0 {
		inca.SetKernelParallelism(*kernels)
	}
	// The kernel-stats hook is free when idle, so the server always
	// installs one: /metrics reports kernel occupancy out of the box.
	inca.InstallKernelStats()

	level := *logLevel
	if *quiet {
		level = "off"
	}
	logger, err := cli.NewLogger(stderr, level)
	if err != nil {
		fmt.Fprintln(stderr, "inca-serve:", err)
		return 2
	}

	// Tracing is on when either trace flag is given; the ring always
	// backs GET /v1/trace/{id}, the JSONL file additionally persists
	// every span for offline analysis.
	var tracer *inca.Tracer
	var traceFile *os.File
	if *traceJSONL != "" || *traceRing > 0 {
		opts := []inca.TracerOption{inca.WithTraceRing(*traceRing)}
		if *traceJSONL != "" {
			traceFile, err = os.OpenFile(*traceJSONL, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(stderr, "inca-serve:", err)
				return 1
			}
			defer traceFile.Close()
			opts = append(opts, inca.WithTraceJSONL(traceFile))
		}
		tracer = inca.NewTracer(opts...)
		logger.Info("tracing enabled", "jsonl", *traceJSONL, "ring", *traceRing)
	}

	// With -store-dir the cache gets a persistent second tier: the index
	// rebuild at open is the warm start — every previously simulated
	// cell serves from disk instead of recomputing.
	var st *inca.ResultStore
	if *storeDir != "" {
		st, err = inca.OpenResultStore(*storeDir, inca.ResultStoreOptions{
			MaxBytes: *storeMaxBytes,
			TTL:      *storeTTL,
		})
		if err != nil {
			fmt.Fprintln(stderr, "inca-serve:", err)
			return 1
		}
		defer st.Close()
		stats := st.Stats()
		logger.Info("result store open",
			"dir", stats.Dir, "entries", stats.Entries,
			"segments", stats.Segments, "bytes", stats.Bytes,
			"torn_records", stats.TornRecords)
	}

	// Chaos mode is strictly opt-in: without -chaos-seed the injector is
	// nil and the fault paths cost nothing.
	var inj *inca.FaultInjector
	if *chaosSeed != 0 {
		inj = inca.NewFaultInjector(*chaosSeed)
		inj.Add(inca.FaultRule{Site: inca.ChaosSiteRequest, Kind: inca.FaultError, Prob: *chaosProb})
		inj.Add(inca.FaultRule{Site: inca.ChaosSiteExec, Kind: inca.FaultLatency, Prob: *chaosProb, Delay: *chaosLatency})
		logger.Warn("chaos mode armed: requests will randomly fail",
			"seed", *chaosSeed, "prob", *chaosProb, "latency", chaosLatency.String())
	}

	svc := inca.NewService(inca.ServiceOptions{
		MaxInflight:    *inflight,
		QueueDepth:     *queue,
		RequestTimeout: *reqTimeout,
		RetryAfter:     *retryAfter,
		DrainTimeout:   *drain,
		ReadinessGrace: *readinessGrace,
		MaxBodyBytes:   *maxBody,
		Store:          st,
		Logger:         logger,
		Inject:         inj,
		Tracer:         tracer,
		EnablePprof:    *pprofOn,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// The resolved address line is the boot handshake: scripts (and the
	// serve-smoke target) wait for it before sending traffic.
	fmt.Fprintf(stdout, "inca-serve listening on http://%s\n", ln.Addr())
	if err := svc.Serve(ctx, ln); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintln(stdout, "inca-serve drained, bye")
	return 0
}
