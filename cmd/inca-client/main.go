// Command inca-client talks to a running inca-serve instance through the
// retrying HTTP client: transport failures and 5xx answers retry with
// capped backoff and seeded jitter, Retry-After hints from a saturated
// server raise the wait floor, and 4xx answers fail immediately.
//
// Usage:
//
//	inca-client [-base URL] [-attempts N] [-timeout D] <command> [flags]
//
// Commands:
//
//	simulate  -arch inca -model ResNet18 -phase inference [-batch N]
//	sweep     -archs inca,baseline -models LeNet5 -phases inference,training
//	models    list the server's model zoo
//	metrics   fetch the server's counter snapshot
//	ready     probe /healthz/ready once (no retries); exit 0 when ready
//
// Every command prints the server's JSON answer to stdout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/inca-arch/inca"
	"github.com/inca-arch/inca/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("inca-client", flag.ContinueOnError)
	fs.SetOutput(stderr)
	base := fs.String("base", "http://127.0.0.1:8321", "service base URL")
	attempts := fs.Int("attempts", 4, "max attempts per request, including the first")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall deadline for the command")
	baseDelay := fs.Duration("base-delay", 100*time.Millisecond, "backoff before the first retry")
	maxDelay := fs.Duration("max-delay", 2*time.Second, "backoff growth cap (Retry-After can exceed it)")
	seed := fs.Int64("seed", 0, "retry-jitter seed (reproducible schedules)")
	trace := fs.Bool("trace", false, "print the server-returned trace ID (X-Trace-Id) to stderr")
	logLevel := cli.LogLevelFlag(fs)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: inca-client [flags] {simulate|sweep|models|metrics|ready} [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	logger, err := cli.NewLogger(stderr, *logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "inca-client:", err)
		return 2
	}

	opt := inca.ClientOptions{
		MaxAttempts: *attempts,
		BaseDelay:   *baseDelay,
		MaxDelay:    *maxDelay,
		Seed:        *seed,
		Logger:      logger,
	}
	if *trace {
		// Stderr keeps stdout parseable; the ID is the handle for
		// GET /v1/trace/{id} on a tracing server.
		opt.OnTrace = func(traceID string) {
			fmt.Fprintln(stderr, "trace:", traceID)
		}
	}
	c, err := inca.NewClient(*base, opt)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	cmd, rest := fs.Arg(0), fs.Args()[1:]
	var out any
	switch cmd {
	case "simulate":
		out, err = runSimulate(ctx, c, rest, stderr)
	case "sweep":
		out, err = runSweep(ctx, c, rest, stderr)
	case "models":
		out, err = c.Models(ctx)
	case "metrics":
		out, err = c.Metrics(ctx)
	case "ready":
		// A single unretried probe: scripts poll a booting (or cluster)
		// node for readiness, and a retried probe would lie about it.
		if err = c.Ready(ctx); err == nil {
			out = map[string]string{"status": "ready"}
		}
	default:
		fmt.Fprintf(stderr, "inca-client: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}
	if err != nil {
		if errors.Is(err, errUsage) {
			return 2
		}
		fmt.Fprintln(stderr, "inca-client:", err)
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(stderr, "inca-client:", err)
		return 1
	}
	return 0
}

// errUsage marks flag-parse failures whose message the FlagSet already
// printed; run maps it to exit code 2 without repeating the error.
var errUsage = errors.New("usage")

func runSimulate(ctx context.Context, c *inca.Client, args []string, stderr io.Writer) (any, error) {
	fs := flag.NewFlagSet("inca-client simulate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	arch := fs.String("arch", "inca", "architecture: inca, baseline, or gpu")
	model := fs.String("model", "ResNet18", "model zoo network name")
	phase := fs.String("phase", "inference", "inference or training")
	batch := fs.Int("batch", 0, "batch-size override (0 = architecture default)")
	if err := fs.Parse(args); err != nil {
		return nil, errUsage
	}
	return c.Simulate(ctx, inca.ServiceSimulateRequest{
		Arch: *arch, Model: *model, Phase: *phase, Batch: *batch,
	})
}

func runSweep(ctx context.Context, c *inca.Client, args []string, stderr io.Writer) (any, error) {
	fs := flag.NewFlagSet("inca-client sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	archs := fs.String("archs", "inca,baseline", "comma-separated architecture axis")
	models := fs.String("models", "LeNet5", "comma-separated model axis")
	phases := fs.String("phases", "inference", "comma-separated phase axis")
	batch := fs.Int("batch", 0, "batch-size override for every non-fixed arch (0 = defaults)")
	if err := fs.Parse(args); err != nil {
		return nil, errUsage
	}
	return c.Sweep(ctx, inca.ServiceSweepRequest{
		Archs:  splitList(*archs),
		Models: splitList(*models),
		Phases: splitList(*phases),
		Batch:  *batch,
	})
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
