// Command inca-client talks to a running inca-serve instance through the
// retrying HTTP client: transport failures and 5xx answers retry with
// capped backoff and seeded jitter, Retry-After hints from a saturated
// server raise the wait floor, and 4xx answers fail immediately.
//
// Usage:
//
//	inca-client [-base URL] [-attempts N] [-timeout D] <command> [flags]
//
// Commands:
//
//	simulate  -arch inca -model ResNet18 -phase inference [-batch N]
//	sweep     -archs inca,baseline -models LeNet5 -phases inference,training
//	job       durable async jobs: submit | status | wait | result | cancel | list
//	trace     print one trace's federated tree, or list recent traces
//	usage     fetch the server's cost-attribution rollup
//	models    list the server's model zoo
//	metrics   fetch the server's counter snapshot
//	ready     probe /healthz/ready once (no retries); exit 0 when ready
//
// The job verbs drive the server's durable async API: `job submit`
// takes sweep's flags and answers immediately with the job's snapshot
// (IDs are content-derived, so resubmitting is idempotent), `job wait`
// polls until the job is terminal and survives the server restarting
// mid-job, and `job result` prints the server's result bytes verbatim
// — byte-identical whether the job ran through or was crash-resumed.
//
//	id=$(inca-client job submit -models LeNet5 | jq -r .id)
//	inca-client job wait "$id"
//	inca-client job result "$id" > result.json
//
// Every command prints the server's JSON answer to stdout (`job
// result` prints the stored result body unmodified).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/inca-arch/inca"
	"github.com/inca-arch/inca/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("inca-client", flag.ContinueOnError)
	fs.SetOutput(stderr)
	base := fs.String("base", "http://127.0.0.1:8321", "service base URL")
	attempts := fs.Int("attempts", 4, "max attempts per request, including the first")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall deadline for the command")
	baseDelay := fs.Duration("base-delay", 100*time.Millisecond, "backoff before the first retry")
	maxDelay := fs.Duration("max-delay", 2*time.Second, "backoff growth cap (Retry-After can exceed it)")
	seed := fs.Int64("seed", 0, "retry-jitter seed (reproducible schedules)")
	trace := fs.Bool("trace", false, "print the server-returned trace ID (X-Trace-Id) to stderr")
	logLevel := cli.LogLevelFlag(fs)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: inca-client [flags] {simulate|sweep|job|trace|usage|models|metrics|ready} [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	logger, err := cli.NewLogger(stderr, *logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "inca-client:", err)
		return 2
	}

	opt := inca.ClientOptions{
		MaxAttempts: *attempts,
		BaseDelay:   *baseDelay,
		MaxDelay:    *maxDelay,
		Seed:        *seed,
		Logger:      logger,
	}
	if *trace {
		// Stderr keeps stdout parseable; the ID is the handle for
		// GET /v1/trace/{id} on a tracing server.
		opt.OnTrace = func(traceID string) {
			fmt.Fprintln(stderr, "trace:", traceID)
		}
	}
	c, err := inca.NewClient(*base, opt)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	cmd, rest := fs.Arg(0), fs.Args()[1:]
	var out any
	switch cmd {
	case "simulate":
		out, err = runSimulate(ctx, c, rest, stderr)
	case "sweep":
		out, err = runSweep(ctx, c, rest, stderr)
	case "job":
		out, err = runJob(ctx, c, rest, stdout, stderr)
	case "models":
		out, err = c.Models(ctx)
	case "metrics":
		out, err = c.Metrics(ctx)
	case "trace":
		out, err = runTrace(ctx, c, rest, stdout, stderr)
	case "usage":
		out, err = c.Usage(ctx)
	case "ready":
		// A single unretried probe: scripts poll a booting (or cluster)
		// node for readiness, and a retried probe would lie about it.
		if err = c.Ready(ctx); err == nil {
			out = map[string]string{"status": "ready"}
		}
	default:
		fmt.Fprintf(stderr, "inca-client: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}
	if err != nil {
		if errors.Is(err, errUsage) {
			return 2
		}
		fmt.Fprintln(stderr, "inca-client:", err)
		return 1
	}
	if out == nil {
		// The command wrote its answer itself (job result streams the
		// stored bytes verbatim — re-encoding would break byte-identity).
		return 0
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(stderr, "inca-client:", err)
		return 1
	}
	return 0
}

// errUsage marks flag-parse failures whose message the FlagSet already
// printed; run maps it to exit code 2 without repeating the error.
var errUsage = errors.New("usage")

func runSimulate(ctx context.Context, c *inca.Client, args []string, stderr io.Writer) (any, error) {
	fs := flag.NewFlagSet("inca-client simulate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	arch := fs.String("arch", "inca", "architecture: inca, baseline, or gpu")
	model := fs.String("model", "ResNet18", "model zoo network name")
	phase := fs.String("phase", "inference", "inference or training")
	batch := fs.Int("batch", 0, "batch-size override (0 = architecture default)")
	if err := fs.Parse(args); err != nil {
		return nil, errUsage
	}
	return c.Simulate(ctx, inca.ServiceSimulateRequest{
		Arch: *arch, Model: *model, Phase: *phase, Batch: *batch,
	})
}

func runSweep(ctx context.Context, c *inca.Client, args []string, stderr io.Writer) (any, error) {
	fs := flag.NewFlagSet("inca-client sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	archs := fs.String("archs", "inca,baseline", "comma-separated architecture axis")
	models := fs.String("models", "LeNet5", "comma-separated model axis")
	phases := fs.String("phases", "inference", "comma-separated phase axis")
	batch := fs.Int("batch", 0, "batch-size override for every non-fixed arch (0 = defaults)")
	if err := fs.Parse(args); err != nil {
		return nil, errUsage
	}
	return c.Sweep(ctx, inca.ServiceSweepRequest{
		Archs:  splitList(*archs),
		Models: splitList(*models),
		Phases: splitList(*phases),
		Batch:  *batch,
	})
}

// runJob dispatches the durable-async-job verbs. Verbs that answer
// with a snapshot (or list) return it for the uniform JSON encoder;
// `result` writes the stored bytes straight to stdout and returns nil.
func runJob(ctx context.Context, c *inca.Client, args []string, stdout, stderr io.Writer) (any, error) {
	usage := func() {
		fmt.Fprintln(stderr, "usage: inca-client job {submit|status|wait|result|cancel|list} ...")
	}
	if len(args) == 0 {
		usage()
		return nil, errUsage
	}
	verb, rest := args[0], args[1:]
	// The id-taking verbs accept the job ID as the sole positional arg.
	wantID := func(fs *flag.FlagSet) (string, error) {
		if err := fs.Parse(rest); err != nil {
			return "", errUsage
		}
		if fs.NArg() != 1 {
			fmt.Fprintf(stderr, "usage: inca-client job %s <job-id>\n", verb)
			return "", errUsage
		}
		return fs.Arg(0), nil
	}
	switch verb {
	case "submit":
		fs := flag.NewFlagSet("inca-client job submit", flag.ContinueOnError)
		fs.SetOutput(stderr)
		archs := fs.String("archs", "inca,baseline", "comma-separated architecture axis")
		models := fs.String("models", "LeNet5", "comma-separated model axis")
		phases := fs.String("phases", "inference", "comma-separated phase axis")
		batch := fs.Int("batch", 0, "batch-size override for every non-fixed arch (0 = defaults)")
		if err := fs.Parse(rest); err != nil {
			return nil, errUsage
		}
		return c.JobSubmit(ctx, inca.ServiceSweepRequest{
			Archs:  splitList(*archs),
			Models: splitList(*models),
			Phases: splitList(*phases),
			Batch:  *batch,
		})
	case "status":
		fs := flag.NewFlagSet("inca-client job status", flag.ContinueOnError)
		fs.SetOutput(stderr)
		id, err := wantID(fs)
		if err != nil {
			return nil, err
		}
		return c.JobStatus(ctx, id)
	case "wait":
		fs := flag.NewFlagSet("inca-client job wait", flag.ContinueOnError)
		fs.SetOutput(stderr)
		poll := fs.Duration("poll", 250*time.Millisecond, "status poll interval")
		id, err := wantID(fs)
		if err != nil {
			return nil, err
		}
		return c.JobWait(ctx, id, *poll)
	case "result":
		fs := flag.NewFlagSet("inca-client job result", flag.ContinueOnError)
		fs.SetOutput(stderr)
		id, err := wantID(fs)
		if err != nil {
			return nil, err
		}
		raw, err := c.JobResult(ctx, id)
		if err != nil {
			return nil, err
		}
		if _, err := stdout.Write(raw); err != nil {
			return nil, err
		}
		return nil, nil
	case "cancel":
		fs := flag.NewFlagSet("inca-client job cancel", flag.ContinueOnError)
		fs.SetOutput(stderr)
		id, err := wantID(fs)
		if err != nil {
			return nil, err
		}
		return c.JobCancel(ctx, id)
	case "list":
		return c.JobList(ctx)
	default:
		fmt.Fprintf(stderr, "inca-client: unknown job verb %q\n", verb)
		usage()
		return nil, errUsage
	}
}

// runTrace is the observability verb: with a trace ID it fetches the
// federated assembly and prints the rendered tree (the server merges
// cluster peers' spans, so on a coordinator the tree spans every node);
// without one it prints the server's trace index as JSON.
func runTrace(ctx context.Context, c *inca.Client, args []string, stdout, stderr io.Writer) (any, error) {
	fs := flag.NewFlagSet("inca-client trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	limit := fs.Int("limit", 0, "max index rows when listing traces (0 = server default)")
	asJSON := fs.Bool("json", false, "print the full span set as JSON instead of the rendered tree")
	if err := fs.Parse(args); err != nil {
		return nil, errUsage
	}
	switch fs.NArg() {
	case 0:
		return c.Traces(ctx, *limit)
	case 1:
		resp, err := c.Trace(ctx, fs.Arg(0))
		if err != nil {
			return nil, err
		}
		if *asJSON {
			return resp, nil
		}
		fmt.Fprint(stdout, resp.Tree)
		return nil, nil
	default:
		fmt.Fprintln(stderr, "usage: inca-client trace [-limit N] [-json] [trace-id]")
		return nil, errUsage
	}
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
