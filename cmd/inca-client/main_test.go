package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/inca-arch/inca"
)

func startService(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(inca.NewServiceHandler(inca.ServiceOptions{}))
	t.Cleanup(ts.Close)
	return ts
}

func TestSimulateCommand(t *testing.T) {
	ts := startService(t)
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-base", ts.URL, "simulate", "-model", "LeNet5", "-phase", "inference"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d; stderr=%q", code, stderr.String())
	}
	var rep inca.Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a report: %v\n%s", err, stdout.String())
	}
	if rep.Network != "LeNet5" || rep.Arch != "INCA" || rep.Total.Latency <= 0 {
		t.Fatalf("implausible report: arch=%q network=%q", rep.Arch, rep.Network)
	}
}

func TestSweepAndModelsAndMetricsCommands(t *testing.T) {
	ts := startService(t)
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-base", ts.URL, "sweep", "-archs", "inca,baseline", "-models", "LeNet5", "-phases", "inference"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("sweep exit = %d; stderr=%q", code, stderr.String())
	}
	var resp inca.ServiceSweepResponse
	if err := json.Unmarshal(stdout.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) != 2 || resp.Failed != 0 {
		t.Fatalf("sweep cells=%d failed=%d, want 2/0", len(resp.Cells), resp.Failed)
	}

	stdout.Reset()
	if code := run(context.Background(), []string{"-base", ts.URL, "models"}, &stdout, &stderr); code != 0 {
		t.Fatalf("models exit = %d; stderr=%q", code, stderr.String())
	}
	var infos []inca.ServiceModelInfo
	if err := json.Unmarshal(stdout.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("empty model zoo")
	}

	stdout.Reset()
	if code := run(context.Background(), []string{"-base", ts.URL, "metrics"}, &stdout, &stderr); code != 0 {
		t.Fatalf("metrics exit = %d; stderr=%q", code, stderr.String())
	}
	var snap inca.ServiceMetrics
	if err := json.Unmarshal(stdout.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	// The simulate and sweep requests above are on the same server.
	if snap.Requests < 2 {
		t.Fatalf("metrics saw %d requests, want >= 2", snap.Requests)
	}
}

func TestServerErrorSurfaces(t *testing.T) {
	ts := startService(t)
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-base", ts.URL, "simulate", "-arch", "tpu"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "400") {
		t.Fatalf("stderr lost the status: %q", stderr.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{}, &stdout, &stderr); code != 2 {
		t.Fatalf("no command: exit = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"teleport"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown command: exit = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"simulate", "-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad subcommand flag: exit = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-base", "not a url", "models"}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad base URL: exit = %d, want 1", code)
	}
}

func TestCommandTimeout(t *testing.T) {
	// A dead endpoint with generous attempts must still respect -timeout.
	var stdout, stderr bytes.Buffer
	start := time.Now()
	code := run(context.Background(),
		[]string{"-base", "http://127.0.0.1:1", "-attempts", "10",
			"-base-delay", "1s", "-timeout", "200ms", "models"},
		&stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("command ignored its 200ms timeout (took %v)", elapsed)
	}
}
