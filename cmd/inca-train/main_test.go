package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBitsExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	// Small dataset to keep the test quick.
	code := run([]string{"-exp", "bits", "-per-class", "16"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Fatalf("missing Table I output:\n%s", out.String())
	}
}

func TestNoiseExperimentSmall(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-exp", "noise", "-per-class", "12", "-epochs", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Table VI") {
		t.Fatalf("missing Table VI output:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
