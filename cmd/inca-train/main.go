// Command inca-train runs the accuracy experiments (paper Tables I and
// VI) on the synthetic dataset: device-noise robustness of weights versus
// activations, and post-training bit-depth sensitivity.
//
// Usage:
//
//	inca-train                       # both experiments at default scale
//	inca-train -exp noise -epochs 10 -repeats 3
//	inca-train -exp bits
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/inca-arch/inca"
	"github.com/inca-arch/inca/internal/cli"
	"github.com/inca-arch/inca/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("inca-train", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment: noise, bits, all")
	epochs := fs.Int("epochs", 0, "override noise fine-tuning epochs (0 = default)")
	perClass := fs.Int("per-class", 0, "override samples per class (0 = default)")
	repeats := fs.Int("repeats", 0, "average noise rows over this many seeds (0 = single run)")
	logLevel := cli.LogLevelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger, err := cli.NewLogger(stderr, *logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "inca-train:", err)
		return 2
	}

	cfg := inca.DefaultExperimentConfig()
	if *epochs > 0 {
		cfg.NoiseEpochs = *epochs
	}
	if *perClass > 0 {
		cfg.Data.PerClass = *perClass
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}

	runNoise := *exp == "noise" || *exp == "all"
	runBits := *exp == "bits" || *exp == "all"
	if !runNoise && !runBits {
		fmt.Fprintf(stderr, "unknown experiment %q\n", *exp)
		return 2
	}

	logger.Debug("experiment config",
		"exp", *exp, "epochs", cfg.NoiseEpochs, "per_class", cfg.Data.PerClass, "repeats", cfg.Repeats)
	if runNoise {
		rows := inca.NoiseAccuracy(cfg, []float64{0.005, 0.01, 0.02, 0.03, 0.05})
		t := report.New("Table VI: training accuracy (%) vs noise strength",
			"sigma", "weights (WS)", "activations (IS)", "clean")
		for _, r := range rows {
			t.AddRow(r.Sigma, r.WeightNoise, r.ActivationAcc, r.BaselineNoNoise)
		}
		fmt.Fprintln(stdout, t)
	}
	if runBits {
		rows := inca.BitDepthAccuracy(cfg, []int{7, 6, 5, 4, 3, 2})
		t := report.New("Table I: accuracy drop vs bit depth (points)",
			"bits", "8b-wt + act@bits", "8b-act + wt@bits")
		for _, r := range rows {
			t.AddRow(r.Bits, r.ActQuantDrop, r.WeightQuantDrop)
		}
		fmt.Fprintln(stdout, t)
	}
	return 0
}
